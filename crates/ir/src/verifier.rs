//! Structural, type and SSA-dominance verification.
//!
//! Every optimization phase in the pass crate is property-tested with this
//! verifier: a phase that produces ill-formed IR is a bug, never "mostly
//! fine". The checks mirror LLVM's verifier at the granularity this IR
//! needs: CFG integrity, phi/predecessor agreement, operand typing and SSA
//! dominance.

use crate::analysis::{Cfg, DomTree};
use crate::block::{BlockId, Terminator};
use crate::function::Function;
use crate::inst::{BinOp, InstId, InstKind};
use crate::module::Module;
use crate::types::Type;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A verification failure, with enough context to locate the offending IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub function: String,
    /// Offending block, when applicable.
    pub block: Option<BlockId>,
    /// Offending instruction, when applicable.
    pub inst: Option<InstId>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in function `{}`", self.function)?;
        if let Some(b) = self.block {
            write!(f, ", block bb{}", b.0)?;
        }
        if let Some(i) = self.inst {
            write!(f, ", inst %{}", i.0)?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns the first violation found: CFG references to deleted blocks,
/// phi lists disagreeing with predecessors, type mismatches, uses of values
/// that do not dominate them, or malformed calls.
pub fn verify(m: &Module) -> Result<(), VerifyError> {
    for fid in m.function_ids() {
        let f = m.function(fid);
        if f.is_declaration {
            continue;
        }
        verify_function(m, f)?;
    }
    Ok(())
}

/// Verifies a single function. See [`verify`].
///
/// # Errors
///
/// Returns the first violation found in this function.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let err = |block: Option<BlockId>, inst: Option<InstId>, message: String| VerifyError {
        function: f.name.clone(),
        block,
        inst,
        message,
    };

    if f.blocks.is_empty() || f.block(BlockId::ENTRY).deleted {
        return Err(err(None, None, "missing or deleted entry block".into()));
    }

    let cfg = Cfg::new(f);
    let dt = DomTree::new(&cfg);

    // Placement map + duplicate detection.
    let mut placed: HashMap<InstId, (BlockId, usize)> = HashMap::new();
    for b in f.block_ids() {
        for (pos, &id) in f.block(b).insts.iter().enumerate() {
            if id.index() >= f.insts.len() {
                return Err(err(Some(b), Some(id), "instruction id out of range".into()));
            }
            if placed.insert(id, (b, pos)).is_some() {
                return Err(err(Some(b), Some(id), "instruction placed twice".into()));
            }
        }
    }

    for b in f.block_ids() {
        let blk = f.block(b);
        // Terminator targets must be live blocks.
        for s in blk.term.successors() {
            if s.index() >= f.blocks.len() || f.block(s).deleted {
                return Err(err(Some(b), None, format!("branch to dead block bb{}", s.0)));
            }
        }
        // Phis must be a prefix.
        let mut seen_non_phi = false;
        for &id in &blk.insts {
            let is_phi = f.inst(id).kind.is_phi();
            if is_phi && seen_non_phi {
                return Err(err(Some(b), Some(id), "phi after non-phi instruction".into()));
            }
            if !is_phi {
                seen_non_phi = true;
            }
        }

        if !cfg.reachable[b.index()] {
            // Unreachable blocks are tolerated (DCE will drop them) but not
            // deeply checked: their phis may reference stale preds.
            continue;
        }

        for (pos, &id) in blk.insts.iter().enumerate() {
            let inst = f.inst(id);
            check_inst_types(m, f, b, id, inst)?;
            // Operand validity + dominance.
            let mut failure: Option<VerifyError> = None;
            if let InstKind::Phi { incomings } = &inst.kind {
                // Phi incoming blocks must exactly match reachable preds.
                let mut preds: Vec<BlockId> = cfg.preds[b.index()].clone();
                let mut inc: Vec<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                preds.sort();
                preds.dedup();
                inc.sort();
                let inc_d = {
                    let mut d = inc.clone();
                    d.dedup();
                    d
                };
                if inc_d.len() != inc.len() {
                    return Err(err(Some(b), Some(id), "duplicate phi predecessor".into()));
                }
                if inc_d != preds {
                    return Err(err(
                        Some(b),
                        Some(id),
                        format!(
                            "phi predecessors {:?} do not match CFG predecessors {:?}",
                            inc_d, preds
                        ),
                    ));
                }
                for (p, v) in incomings {
                    if let Value::Inst(d) = v {
                        match placed.get(d) {
                            None => {
                                failure = Some(err(
                                    Some(b),
                                    Some(id),
                                    format!("phi uses unplaced value %{}", d.0),
                                ));
                            }
                            Some((db, _)) => {
                                if !dt.dominates(*db, *p) {
                                    failure = Some(err(
                                        Some(b),
                                        Some(id),
                                        format!(
                                            "phi incoming %{} does not dominate pred bb{}",
                                            d.0, p.0
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                    if failure.is_some() {
                        break;
                    }
                }
            } else {
                inst.kind.for_each_operand(|v| {
                    if failure.is_some() {
                        return;
                    }
                    if let Some(e) =
                        check_use(m, f, &placed, &dt, b, pos, v, || err(Some(b), Some(id), String::new()))
                    {
                        failure = Some(e);
                    }
                });
            }
            if let Some(e) = failure {
                return Err(e);
            }
        }

        // Terminator operand checks.
        let mut failure: Option<VerifyError> = None;
        blk.term.for_each_operand(|v| {
            if failure.is_some() {
                return;
            }
            if let Some(e) = check_use(m, f, &placed, &dt, b, usize::MAX, v, || {
                err(Some(b), None, String::new())
            }) {
                failure = Some(e);
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        match &blk.term {
            Terminator::CondBr { cond, .. } if f.value_type(*cond) != Type::I1 => {
                return Err(err(Some(b), None, "condbr condition is not i1".into()));
            }
            Terminator::Ret(v) => {
                let got = v.map(|v| f.value_type(v)).unwrap_or(Type::Void);
                if got != f.ret_ty {
                    return Err(err(
                        Some(b),
                        None,
                        format!("return type {got} does not match signature {}", f.ret_ty),
                    ));
                }
            }
            Terminator::Switch { val, .. } if !f.value_type(*val).is_int() => {
                return Err(err(Some(b), None, "switch on non-integer".into()));
            }
            _ => {}
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_use(
    m: &Module,
    f: &Function,
    placed: &HashMap<InstId, (BlockId, usize)>,
    dt: &DomTree,
    use_block: BlockId,
    use_pos: usize,
    v: Value,
    mk: impl Fn() -> VerifyError,
) -> Option<VerifyError> {
    match v {
        Value::Inst(d) => match placed.get(&d) {
            None => {
                let mut e = mk();
                e.message = format!("use of unplaced value %{}", d.0);
                Some(e)
            }
            Some((db, dp)) => {
                let ok = if *db == use_block {
                    *dp < use_pos
                } else {
                    dt.dominates(*db, use_block)
                };
                if ok {
                    None
                } else {
                    let mut e = mk();
                    e.message = format!("use of %{} not dominated by its definition", d.0);
                    Some(e)
                }
            }
        },
        Value::Param(i) => {
            if (i as usize) < f.params.len() {
                None
            } else {
                let mut e = mk();
                e.message = format!("parameter index {i} out of range");
                Some(e)
            }
        }
        Value::Global(g) => {
            if g.index() < m.globals.len() && !m.global(g).deleted {
                None
            } else {
                let mut e = mk();
                e.message = format!("reference to dead global @g{}", g.0);
                Some(e)
            }
        }
        Value::FuncAddr(fa) => {
            if fa.index() < m.functions.len() {
                None
            } else {
                let mut e = mk();
                e.message = format!("reference to invalid function @fn{}", fa.0);
                Some(e)
            }
        }
        _ => None,
    }
}

fn check_inst_types(
    m: &Module,
    f: &Function,
    b: BlockId,
    id: InstId,
    inst: &crate::inst::Inst,
) -> Result<(), VerifyError> {
    let err = |message: String| VerifyError {
        function: f.name.clone(),
        block: Some(b),
        inst: Some(id),
        message,
    };
    match &inst.kind {
        InstKind::Bin { op, lhs, rhs, width } => {
            if *width == 0 {
                return Err(err("vector width 0".into()));
            }
            let lt = f.value_type(*lhs);
            let rt = f.value_type(*rhs);
            if op.is_float() {
                if !lt.is_float() || !rt.is_float() {
                    return Err(err(format!("float op {op} on {lt}/{rt}")));
                }
            } else if matches!(op, BinOp::Shl | BinOp::AShr | BinOp::LShr) {
                if !lt.is_int() || !rt.is_int() {
                    return Err(err(format!("shift {op} on {lt}/{rt}")));
                }
            } else if lt.is_float() || rt.is_float() {
                return Err(err(format!("int op {op} on {lt}/{rt}")));
            }
            if inst.ty != lt {
                return Err(err(format!("result type {} != lhs type {lt}", inst.ty)));
            }
        }
        InstKind::Cmp { lhs, rhs, .. } => {
            if inst.ty != Type::I1 {
                return Err(err("cmp result must be i1".into()));
            }
            let lt = f.value_type(*lhs);
            let rt = f.value_type(*rhs);
            if lt != rt && !(lt.is_ptr() && rt.is_int() || lt.is_int() && rt.is_ptr()) {
                return Err(err(format!("cmp operand types differ: {lt} vs {rt}")));
            }
        }
        InstKind::Select {
            cond,
            then_val,
            else_val,
        } => {
            if f.value_type(*cond) != Type::I1 {
                return Err(err("select condition is not i1".into()));
            }
            let tt = f.value_type(*then_val);
            let et = f.value_type(*else_val);
            if tt != et || inst.ty != tt {
                return Err(err(format!("select arm types {tt}/{et} vs result {}", inst.ty)));
            }
        }
        InstKind::Load { ptr, .. } => {
            if !f.value_type(*ptr).is_ptr() {
                return Err(err("load from non-pointer".into()));
            }
            if inst.ty == Type::Void {
                return Err(err("load of void".into()));
            }
        }
        InstKind::Store { ptr, value, .. } => {
            if !f.value_type(*ptr).is_ptr() {
                return Err(err("store to non-pointer".into()));
            }
            if f.value_type(*value) == Type::Void {
                return Err(err("store of void value".into()));
            }
        }
        InstKind::Gep { base, offset } => {
            if !f.value_type(*base).is_ptr() {
                return Err(err("gep base is not a pointer".into()));
            }
            if !f.value_type(*offset).is_int() {
                return Err(err("gep offset is not an integer".into()));
            }
        }
        InstKind::Call {
            callee: crate::inst::Callee::Direct(c),
            args,
        } => {
            if c.index() >= m.functions.len() {
                return Err(err(format!("call to invalid function @fn{}", c.0)));
            }
            let callee_fn = m.function(*c);
            if callee_fn.params.len() != args.len() {
                return Err(err(format!(
                    "call to `{}` with {} args, expected {}",
                    callee_fn.name,
                    args.len(),
                    callee_fn.params.len()
                )));
            }
            if inst.ty != callee_fn.ret_ty {
                return Err(err(format!(
                    "call result type {} != callee return type {}",
                    inst.ty, callee_fn.ret_ty
                )));
            }
        }
        InstKind::Alloca { cells } => {
            if *cells == 0 {
                return Err(err("alloca of zero cells".into()));
            }
            if inst.ty != Type::Ptr {
                return Err(err("alloca result must be ptr".into()));
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Inst;

    #[test]
    fn accepts_valid_module() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![Type::I64], Type::I64);
        {
            let mut b = mb.body();
            let acc = b.local(b.const_i64(0));
            b.for_loop(b.const_i64(0), b.param(0), 1, |b, i| {
                let c = b.load(acc, Type::I64);
                let n = b.add(c, i);
                b.store(acc, n);
            });
            let r = b.load(acc, Type::I64);
            b.ret(Some(r));
        }
        mb.finish_function();
        assert!(verify(&mb.build()).is_ok());
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![Type::F64], Type::F64);
        {
            let mut b = mb.body();
            // Int add on float operands.
            let bad = b.func().append_inst(
                BlockId::ENTRY,
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Value::Param(0),
                    rhs: Value::f64(1.0),
                    width: 1,
                },
                Type::F64,
            );
            b.ret(Some(bad));
        }
        mb.finish_function();
        let e = verify(&mb.build()).unwrap_err();
        assert!(e.message.contains("int op"), "{e}");
    }

    #[test]
    fn rejects_bad_return_type() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![], Type::I64);
        mb.body().ret(None);
        mb.finish_function();
        let e = verify(&mb.build()).unwrap_err();
        assert!(e.message.contains("return type"), "{e}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![], Type::I64);
        {
            let mut b = mb.body();
            let f = b.func();
            // Manually create: %0 = add %1, 1 ; %1 = add 0, 0 — use before def.
            let i0 = f.add_inst(Inst::new(
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Value::Inst(InstId(1)),
                    rhs: Value::i64(1),
                    width: 1,
                },
                Type::I64,
            ));
            let i1 = f.add_inst(Inst::new(
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Value::i64(0),
                    rhs: Value::i64(0),
                    width: 1,
                },
                Type::I64,
            ));
            f.blocks[0].insts = vec![i0, i1];
            f.blocks[0].term = Terminator::Ret(Some(Value::Inst(i1)));
        }
        mb.finish_function();
        let e = verify(&mb.build()).unwrap_err();
        assert!(e.message.contains("not dominated"), "{e}");
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![], Type::I64);
        {
            let mut b = mb.body();
            let next = b.new_block();
            b.br(next);
            b.switch_to(next);
            // Phi claiming an incoming edge from a non-pred block.
            let bogus = b.new_block();
            let p = b.phi(Type::I64, vec![(bogus, Value::i64(1))]);
            b.ret(Some(p));
            let f = b.func();
            f.block_mut(bogus).term = Terminator::Ret(Some(Value::i64(0)));
        }
        mb.finish_function();
        let e = verify(&mb.build()).unwrap_err();
        assert!(e.message.contains("phi predecessors"), "{e}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare("callee", vec![Type::I64], Type::Void);
        mb.begin_existing(callee);
        mb.body().ret(None);
        mb.finish_function();
        mb.begin_function("caller", vec![], Type::Void);
        {
            let mut b = mb.body();
            b.call(callee, vec![], Type::Void); // missing arg
            b.ret(None);
        }
        mb.finish_function();
        let e = verify(&mb.build()).unwrap_err();
        assert!(e.message.contains("0 args"), "{e}");
    }

    #[test]
    fn rejects_branch_to_deleted_block() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![], Type::Void);
        {
            let mut b = mb.body();
            let dead = b.new_block();
            b.br(dead);
            let f = b.func();
            f.block_mut(dead).deleted = true;
        }
        mb.finish_function();
        let e = verify(&mb.build()).unwrap_err();
        assert!(e.message.contains("dead block"), "{e}");
    }
}
