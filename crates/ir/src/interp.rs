//! A profiling interpreter: executes a module and returns per-operation
//! dynamic counts.
//!
//! This is the stand-in for running compiled binaries on real hardware (or
//! the paper's HIPERSIM simulator): the interpreter observes the *dynamic*
//! behaviour of the optimized IR — how many multiplies, loads, branches,
//! vector lanes actually execute — and the platform crate turns those counts
//! into execution time and energy through its cost models.

use crate::block::{BlockId, Terminator};
use crate::function::{FuncId, Function};
use crate::inst::{BinOp, Callee, CastOp, InstKind, UnOp};
use crate::module::Module;
use crate::types::Type;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A runtime value: integer/pointer or float. Pointers are cell indices
/// into the interpreter's flat memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtVal {
    /// Integer, boolean or pointer payload.
    I(i64),
    /// Floating-point payload (F32 values are round-tripped through `f32`).
    F(f64),
}

impl RtVal {
    /// Integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float (a type-confusion bug in the caller).
    pub fn as_i(self) -> i64 {
        match self {
            RtVal::I(v) => v,
            RtVal::F(v) => panic!("expected int, found float {v}"),
        }
    }

    /// Float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_f(self) -> f64 {
        match self {
            RtVal::F(v) => v,
            RtVal::I(v) => panic!("expected float, found int {v}"),
        }
    }

    /// Raw 64-bit memory representation.
    pub fn to_bits(self) -> i64 {
        match self {
            RtVal::I(v) => v,
            RtVal::F(v) => v.to_bits() as i64,
        }
    }

    /// Reinterprets a 64-bit memory cell as a value of type `ty`.
    pub fn from_bits(bits: i64, ty: Type) -> RtVal {
        if ty.is_float() {
            RtVal::F(f64::from_bits(bits as u64))
        } else {
            RtVal::I(bits)
        }
    }
}

/// Why execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The step budget was exhausted (runaway or mis-sized workload).
    OutOfFuel,
    /// Call depth exceeded the configured limit.
    StackOverflow,
    /// An alloca exceeded the memory limit.
    OutOfMemory,
    /// Integer division or remainder by zero.
    DivByZero,
    /// A load/store/memset/memcpy touched memory outside any allocation.
    MemoryOutOfBounds {
        /// The offending cell address.
        addr: i64,
    },
    /// A call referenced a function that does not exist or has no body.
    BadCall {
        /// Name or id of the target.
        target: String,
    },
    /// An `unreachable` terminator was executed.
    UnreachableExecuted,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "execution fuel exhausted"),
            ExecError::StackOverflow => write!(f, "call stack depth limit exceeded"),
            ExecError::OutOfMemory => write!(f, "memory limit exceeded"),
            ExecError::DivByZero => write!(f, "integer division by zero"),
            ExecError::MemoryOutOfBounds { addr } => {
                write!(f, "memory access out of bounds at cell {addr}")
            }
            ExecError::BadCall { target } => write!(f, "call to unavailable function `{target}`"),
            ExecError::UnreachableExecuted => write!(f, "unreachable code executed"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Dynamic operation counts gathered during one execution.
///
/// These are architecture-*independent* counts; the platform cost models
/// weight them into cycles, seconds and joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynCounts {
    /// Simple integer ALU ops (add/sub/logic/shift/cmp/select/gep/cast…).
    pub int_alu: u64,
    /// Integer multiplies.
    pub int_mul: u64,
    /// Integer divides/remainders.
    pub int_div: u64,
    /// Float adds/subtracts/compares.
    pub fp_add: u64,
    /// Float multiplies.
    pub fp_mul: u64,
    /// Float divides/remainders.
    pub fp_div: u64,
    /// Long-latency float ops (sqrt, exp, log, sin, cos).
    pub fp_special: u64,
    /// Memory loads (each vector load counts once).
    pub load: u64,
    /// Memory stores.
    pub store: u64,
    /// Loads/stores not marked aligned.
    pub unaligned_mem: u64,
    /// Vectorized instructions executed.
    pub vector_ops: u64,
    /// Total lanes covered by vectorized instructions.
    pub vector_lanes: u64,
    /// Conditional branches executed.
    pub branch: u64,
    /// Conditional branches taken.
    pub taken: u64,
    /// Unconditional jumps and switches.
    pub jump: u64,
    /// Branches with a correct static hint (`lower-expect`).
    pub hinted_correct: u64,
    /// Branches with an incorrect static hint.
    pub hinted_wrong: u64,
    /// Calls executed.
    pub call: u64,
    /// Returns executed.
    pub ret: u64,
    /// Phi moves resolved.
    pub phi: u64,
    /// Stack allocations executed.
    pub alloca: u64,
    /// Cells written by memset intrinsics.
    pub memset_cells: u64,
    /// Cells copied by memcpy intrinsics.
    pub memcpy_cells: u64,
    /// Memset/memcpy intrinsic invocations.
    pub mem_intrinsic: u64,
}

impl DynCounts {
    /// Total architecturally executed instructions (the paper's
    /// "# executed instructions" metric). Phi moves are excluded: they are
    /// resolved by register allocation, not executed.
    pub fn total_instructions(&self) -> u64 {
        self.int_alu
            + self.int_mul
            + self.int_div
            + self.fp_add
            + self.fp_mul
            + self.fp_div
            + self.fp_special
            + self.load
            + self.store
            + self.branch
            + self.jump
            + self.call
            + self.ret
            + self.alloca
            + self.mem_intrinsic
    }

    /// Total memory operations.
    pub fn memory_ops(&self) -> u64 {
        self.load + self.store
    }

    /// Adds another count set into this one.
    pub fn merge(&mut self, o: &DynCounts) {
        self.int_alu += o.int_alu;
        self.int_mul += o.int_mul;
        self.int_div += o.int_div;
        self.fp_add += o.fp_add;
        self.fp_mul += o.fp_mul;
        self.fp_div += o.fp_div;
        self.fp_special += o.fp_special;
        self.load += o.load;
        self.store += o.store;
        self.unaligned_mem += o.unaligned_mem;
        self.vector_ops += o.vector_ops;
        self.vector_lanes += o.vector_lanes;
        self.branch += o.branch;
        self.taken += o.taken;
        self.jump += o.jump;
        self.hinted_correct += o.hinted_correct;
        self.hinted_wrong += o.hinted_wrong;
        self.call += o.call;
        self.ret += o.ret;
        self.phi += o.phi;
        self.alloca += o.alloca;
        self.memset_cells += o.memset_cells;
        self.memcpy_cells += o.memcpy_cells;
        self.mem_intrinsic += o.mem_intrinsic;
    }
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// Maximum executed IR operations before [`ExecError::OutOfFuel`].
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: u32,
    /// Maximum memory size in cells.
    pub max_cells: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            fuel: 1 << 31,
            max_depth: 1 << 12,
            max_cells: 1 << 24,
        }
    }
}

/// The result of a successful execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The entry function's return value.
    pub ret: Option<RtVal>,
    /// Dynamic operation counts.
    pub counts: DynCounts,
}

/// Executes functions of one module.
///
/// # Example
///
/// ```
/// use mlcomp_ir::{Interpreter, ModuleBuilder, RtVal, Type};
///
/// let mut mb = ModuleBuilder::new("m");
/// let f = mb.begin_function("sum", vec![Type::I64], Type::I64);
/// {
///     let mut b = mb.body();
///     let acc = b.local(b.const_i64(0));
///     b.for_loop(b.const_i64(0), b.param(0), 1, |b, i| {
///         let c = b.load(acc, Type::I64);
///         let n = b.add(c, i);
///         b.store(acc, n);
///     });
///     let r = b.load(acc, Type::I64);
///     b.ret(Some(r));
/// }
/// mb.finish_function();
/// let m = mb.build();
/// let out = Interpreter::new(&m).run(f, &[RtVal::I(10)]).unwrap();
/// assert_eq!(out.ret, Some(RtVal::I(45)));
/// assert!(out.counts.load >= 10);
/// ```
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    config: InterpConfig,
    memory: Vec<i64>,
    global_base: Vec<i64>,
    stack_top: usize,
    counts: DynCounts,
    fuel_left: u64,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with default limits. Globals are laid out and
    /// initialized at the bottom of memory (address 0 is reserved as null).
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        Interpreter::with_config(module, InterpConfig::default())
    }

    /// Creates an interpreter with explicit limits.
    pub fn with_config(module: &'m Module, config: InterpConfig) -> Interpreter<'m> {
        let mut memory = vec![0i64; 1]; // cell 0 = null, never valid
        let mut global_base = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            global_base.push(memory.len() as i64);
            let base = memory.len();
            memory.resize(base + g.cells as usize, 0);
            for (i, v) in g.init.iter().enumerate() {
                memory[base + i] = *v;
            }
        }
        let stack_top = memory.len();
        Interpreter {
            module,
            config,
            memory,
            global_base,
            stack_top,
            counts: DynCounts::default(),
            fuel_left: config.fuel,
        }
    }

    /// Runs `entry` with `args`, returning the outcome with accumulated
    /// counts.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] when execution traps (division by zero,
    /// out-of-bounds access), exceeds a limit, or calls an unavailable
    /// function.
    pub fn run(mut self, entry: FuncId, args: &[RtVal]) -> Result<Outcome, ExecError> {
        let ret = self.call(entry, args.to_vec(), 0)?;
        Ok(Outcome {
            ret,
            counts: self.counts,
        })
    }

    fn fuel(&mut self, n: u64) -> Result<(), ExecError> {
        if self.fuel_left < n {
            return Err(ExecError::OutOfFuel);
        }
        self.fuel_left -= n;
        Ok(())
    }

    fn mem_read(&mut self, addr: i64) -> Result<i64, ExecError> {
        if addr <= 0 || addr as usize >= self.memory.len() {
            return Err(ExecError::MemoryOutOfBounds { addr });
        }
        Ok(self.memory[addr as usize])
    }

    fn mem_write(&mut self, addr: i64, v: i64) -> Result<(), ExecError> {
        if addr <= 0 || addr as usize >= self.memory.len() {
            return Err(ExecError::MemoryOutOfBounds { addr });
        }
        self.memory[addr as usize] = v;
        Ok(())
    }

    fn call(
        &mut self,
        fid: FuncId,
        args: Vec<RtVal>,
        depth: u32,
    ) -> Result<Option<RtVal>, ExecError> {
        if depth > self.config.max_depth {
            return Err(ExecError::StackOverflow);
        }
        let f = self
            .module
            .functions
            .get(fid.index())
            .ok_or_else(|| ExecError::BadCall {
                target: format!("fn{}", fid.0),
            })?;
        if f.is_declaration || f.blocks.is_empty() {
            return Err(ExecError::BadCall {
                target: f.name.clone(),
            });
        }
        let frame_base = self.stack_top;
        let result = self.exec_body(f, args, depth);
        self.stack_top = frame_base; // pop frame allocas
        result
    }

    fn exec_body(
        &mut self,
        f: &Function,
        args: Vec<RtVal>,
        depth: u32,
    ) -> Result<Option<RtVal>, ExecError> {
        let mut regs: Vec<Option<RtVal>> = vec![None; f.insts.len()];
        let mut block = BlockId::ENTRY;
        let mut prev: Option<BlockId> = None;

        'blocks: loop {
            let blk = f.block(block);

            // Resolve phis atomically with respect to the incoming edge.
            if let Some(p) = prev {
                let mut phi_vals: Vec<(crate::inst::InstId, RtVal)> = Vec::new();
                for &id in &blk.insts {
                    match &f.inst(id).kind {
                        InstKind::Phi { incomings } => {
                            let (_, v) = incomings
                                .iter()
                                .find(|(b, _)| *b == p)
                                .copied()
                                .ok_or(ExecError::UnreachableExecuted)?;
                            let rv = self.eval(f, &regs, &args, v)?;
                            phi_vals.push((id, rv));
                        }
                        _ => break,
                    }
                }
                self.counts.phi += phi_vals.len() as u64;
                self.fuel(phi_vals.len() as u64)?;
                for (id, v) in phi_vals {
                    regs[id.index()] = Some(v);
                }
            }

            for &id in &blk.insts {
                let inst = f.inst(id);
                if inst.kind.is_phi() {
                    continue;
                }
                self.fuel(1)?;
                let result = self.exec_inst(f, &mut regs, &args, inst, depth)?;
                regs[id.index()] = result;
            }

            self.fuel(1)?;
            match &blk.term {
                Terminator::Br(t) => {
                    self.counts.jump += 1;
                    prev = Some(block);
                    block = *t;
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                    weight,
                } => {
                    let c = self.eval(f, &regs, &args, *cond)?.as_i() != 0;
                    self.counts.branch += 1;
                    if c {
                        self.counts.taken += 1;
                    }
                    if let Some(w) = weight {
                        if c == (*w >= 50) {
                            self.counts.hinted_correct += 1;
                        } else {
                            self.counts.hinted_wrong += 1;
                        }
                    }
                    prev = Some(block);
                    block = if c { *then_bb } else { *else_bb };
                }
                Terminator::Switch { val, cases, default } => {
                    let v = self.eval(f, &regs, &args, *val)?.as_i();
                    self.counts.jump += 1;
                    // A switch costs comparisons proportional to its size
                    // (jump table lookup modeled as 2 extra ALU ops).
                    self.counts.int_alu += 2;
                    let target = cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                    prev = Some(block);
                    block = target;
                }
                Terminator::Ret(v) => {
                    self.counts.ret += 1;
                    let rv = match v {
                        Some(v) => Some(self.eval(f, &regs, &args, *v)?),
                        None => None,
                    };
                    return Ok(rv);
                }
                Terminator::Unreachable => return Err(ExecError::UnreachableExecuted),
            }
            continue 'blocks;
        }
    }

    fn eval(
        &self,
        _f: &Function,
        regs: &[Option<RtVal>],
        args: &[RtVal],
        v: Value,
    ) -> Result<RtVal, ExecError> {
        Ok(match v {
            Value::Inst(id) => regs[id.index()].ok_or(ExecError::UnreachableExecuted)?,
            Value::Param(i) => args
                .get(i as usize)
                .copied()
                .unwrap_or(RtVal::I(0)),
            Value::ConstInt(c, _) => RtVal::I(c),
            Value::ConstFloat(bits, _) => RtVal::F(f64::from_bits(bits)),
            Value::Global(g) => RtVal::I(self.global_base[g.index()]),
            Value::FuncAddr(fa) => RtVal::I(!(fa.0 as i64)), // tagged fn pointer
            Value::Undef(t) => {
                if t.is_float() {
                    RtVal::F(0.0)
                } else {
                    RtVal::I(0)
                }
            }
        })
    }

    #[allow(clippy::too_many_lines)]
    fn exec_inst(
        &mut self,
        f: &Function,
        regs: &mut [Option<RtVal>],
        args: &[RtVal],
        inst: &crate::inst::Inst,
        depth: u32,
    ) -> Result<Option<RtVal>, ExecError> {
        let kind = &inst.kind;
        let out = match kind {
            InstKind::Bin { op, lhs, rhs, width } => {
                let a = self.eval(f, regs, args, *lhs)?;
                let b = self.eval(f, regs, args, *rhs)?;
                if *width > 1 {
                    self.counts.vector_ops += 1;
                    self.counts.vector_lanes += *width as u64;
                }
                let r = self.eval_bin(*op, a, b, inst.ty)?;
                Some(r)
            }
            InstKind::Un { op, val } => {
                let v = self.eval(f, regs, args, *val)?;
                Some(self.eval_un(*op, v, inst.ty))
            }
            InstKind::Cmp { pred, lhs, rhs } => {
                let a = self.eval(f, regs, args, *lhs)?;
                let b = self.eval(f, regs, args, *rhs)?;
                let r = match (a, b) {
                    (RtVal::F(x), RtVal::F(y)) => {
                        self.counts.fp_add += 1;
                        pred.eval_float(x, y)
                    }
                    (x, y) => {
                        self.counts.int_alu += 1;
                        pred.eval_int(x.as_i(), y.as_i())
                    }
                };
                Some(RtVal::I(r as i64))
            }
            InstKind::Select {
                cond,
                then_val,
                else_val,
            } => {
                self.counts.int_alu += 1;
                let c = self.eval(f, regs, args, *cond)?.as_i() != 0;
                let v = if c {
                    self.eval(f, regs, args, *then_val)?
                } else {
                    self.eval(f, regs, args, *else_val)?
                };
                Some(v)
            }
            InstKind::Cast { op, val } => {
                self.counts.int_alu += 1;
                let v = self.eval(f, regs, args, *val)?;
                Some(self.eval_cast(*op, v, inst.ty))
            }
            InstKind::Alloca { cells } => {
                self.counts.alloca += 1;
                let base = self.stack_top;
                let new_top = base + *cells as usize;
                if new_top > self.config.max_cells {
                    return Err(ExecError::OutOfMemory);
                }
                if new_top > self.memory.len() {
                    self.memory.resize(new_top, 0);
                }
                // Fresh allocas are not zeroed by the language, but zeroing
                // keeps repeated profiling runs deterministic.
                for c in &mut self.memory[base..new_top] {
                    *c = 0;
                }
                self.stack_top = new_top;
                Some(RtVal::I(base as i64))
            }
            InstKind::Load { ptr, aligned, width } => {
                let a = self.eval(f, regs, args, *ptr)?.as_i();
                self.counts.load += 1;
                if !aligned {
                    self.counts.unaligned_mem += 1;
                }
                if *width > 1 {
                    self.counts.vector_ops += 1;
                    self.counts.vector_lanes += *width as u64;
                }
                let bits = self.mem_read(a)?;
                Some(RtVal::from_bits(bits, inst.ty))
            }
            InstKind::Store {
                ptr,
                value,
                aligned,
                width,
            } => {
                let a = self.eval(f, regs, args, *ptr)?.as_i();
                let v = self.eval(f, regs, args, *value)?;
                self.counts.store += 1;
                if !aligned {
                    self.counts.unaligned_mem += 1;
                }
                if *width > 1 {
                    self.counts.vector_ops += 1;
                    self.counts.vector_lanes += *width as u64;
                }
                self.mem_write(a, v.to_bits())?;
                None
            }
            InstKind::Gep { base, offset } => {
                self.counts.int_alu += 1;
                let b = self.eval(f, regs, args, *base)?.as_i();
                let o = self.eval(f, regs, args, *offset)?.as_i();
                Some(RtVal::I(b.wrapping_add(o)))
            }
            InstKind::Call { callee, args: cargs } => {
                self.counts.call += 1;
                let mut vals = Vec::with_capacity(cargs.len());
                for a in cargs {
                    vals.push(self.eval(f, regs, args, *a)?);
                }
                let target = match callee {
                    Callee::Direct(c) => *c,
                    Callee::Indirect(v) => {
                        self.counts.int_alu += 1; // pointer resolution
                        let tagged = self.eval(f, regs, args, *v)?.as_i();
                        let raw = !tagged;
                        if raw < 0 || raw as usize >= self.module.functions.len() {
                            return Err(ExecError::BadCall {
                                target: format!("indirect({tagged})"),
                            });
                        }
                        FuncId(raw as u32)
                    }
                };
                self.call(target, vals, depth + 1)?
            }
            InstKind::Memset { ptr, value, count } => {
                self.counts.mem_intrinsic += 1;
                let p = self.eval(f, regs, args, *ptr)?.as_i();
                let v = self.eval(f, regs, args, *value)?.to_bits();
                let n = self.eval(f, regs, args, *count)?.as_i().max(0);
                self.counts.memset_cells += n as u64;
                self.fuel(n as u64 / 8 + 1)?;
                for i in 0..n {
                    self.mem_write(p + i, v)?;
                }
                None
            }
            InstKind::Memcpy { dst, src, count } => {
                self.counts.mem_intrinsic += 1;
                let d = self.eval(f, regs, args, *dst)?.as_i();
                let s = self.eval(f, regs, args, *src)?.as_i();
                let n = self.eval(f, regs, args, *count)?.as_i().max(0);
                self.counts.memcpy_cells += n as u64;
                self.fuel(n as u64 / 8 + 1)?;
                for i in 0..n {
                    let v = self.mem_read(s + i)?;
                    self.mem_write(d + i, v)?;
                }
                None
            }
            InstKind::Expect { val, .. } => {
                self.counts.int_alu += 1;
                Some(self.eval(f, regs, args, *val)?)
            }
            InstKind::Phi { .. } => unreachable!("phis handled at block entry"),
        };
        Ok(out)
    }

    fn eval_bin(&mut self, op: BinOp, a: RtVal, b: RtVal, ty: Type) -> Result<RtVal, ExecError> {
        use BinOp::*;
        if op.is_float() {
            let (x, y) = (a.as_f(), b.as_f());
            let r = match op {
                FAdd => {
                    self.counts.fp_add += 1;
                    x + y
                }
                FSub => {
                    self.counts.fp_add += 1;
                    x - y
                }
                FMul => {
                    self.counts.fp_mul += 1;
                    x * y
                }
                FDiv => {
                    self.counts.fp_div += 1;
                    x / y
                }
                FRem => {
                    self.counts.fp_div += 1;
                    x % y
                }
                _ => unreachable!(),
            };
            let r = if ty == Type::F32 { r as f32 as f64 } else { r };
            return Ok(RtVal::F(r));
        }
        let (x, y) = (a.as_i(), b.as_i());
        let r = match op {
            Add => {
                self.counts.int_alu += 1;
                x.wrapping_add(y)
            }
            Sub => {
                self.counts.int_alu += 1;
                x.wrapping_sub(y)
            }
            Mul => {
                self.counts.int_mul += 1;
                x.wrapping_mul(y)
            }
            SDiv => {
                self.counts.int_div += 1;
                if y == 0 {
                    return Err(ExecError::DivByZero);
                }
                x.wrapping_div(y)
            }
            UDiv => {
                self.counts.int_div += 1;
                if y == 0 {
                    return Err(ExecError::DivByZero);
                }
                ((x as u64) / (y as u64)) as i64
            }
            SRem => {
                self.counts.int_div += 1;
                if y == 0 {
                    return Err(ExecError::DivByZero);
                }
                x.wrapping_rem(y)
            }
            URem => {
                self.counts.int_div += 1;
                if y == 0 {
                    return Err(ExecError::DivByZero);
                }
                ((x as u64) % (y as u64)) as i64
            }
            And => {
                self.counts.int_alu += 1;
                x & y
            }
            Or => {
                self.counts.int_alu += 1;
                x | y
            }
            Xor => {
                self.counts.int_alu += 1;
                x ^ y
            }
            Shl => {
                self.counts.int_alu += 1;
                x.wrapping_shl(y as u32 & 63)
            }
            AShr => {
                self.counts.int_alu += 1;
                x.wrapping_shr(y as u32 & 63)
            }
            LShr => {
                self.counts.int_alu += 1;
                ((x as u64).wrapping_shr(y as u32 & 63)) as i64
            }
            _ => unreachable!(),
        };
        let r = truncate_int(r, ty);
        Ok(RtVal::I(r))
    }

    fn eval_un(&mut self, op: UnOp, v: RtVal, ty: Type) -> RtVal {
        match op {
            UnOp::Neg => {
                self.counts.int_alu += 1;
                RtVal::I(truncate_int(v.as_i().wrapping_neg(), ty))
            }
            UnOp::Not => {
                self.counts.int_alu += 1;
                RtVal::I(truncate_int(!v.as_i(), ty))
            }
            UnOp::FNeg => {
                self.counts.fp_add += 1;
                RtVal::F(-v.as_f())
            }
            UnOp::FAbs => {
                self.counts.fp_add += 1;
                RtVal::F(v.as_f().abs())
            }
            UnOp::Sqrt => {
                self.counts.fp_special += 1;
                RtVal::F(v.as_f().sqrt())
            }
            UnOp::Exp => {
                self.counts.fp_special += 1;
                RtVal::F(v.as_f().exp())
            }
            UnOp::Log => {
                self.counts.fp_special += 1;
                RtVal::F(v.as_f().ln())
            }
            UnOp::Sin => {
                self.counts.fp_special += 1;
                RtVal::F(v.as_f().sin())
            }
            UnOp::Cos => {
                self.counts.fp_special += 1;
                RtVal::F(v.as_f().cos())
            }
        }
    }

    fn eval_cast(&self, op: CastOp, v: RtVal, to: Type) -> RtVal {
        match op {
            CastOp::Trunc => RtVal::I(truncate_int(v.as_i(), to)),
            CastOp::Zext => {
                let bits = v.as_i();
                // Zero-extension from I1/I32 source widths: the source was
                // already truncated at creation, mask defensively.
                RtVal::I(bits & mask_for(to))
            }
            CastOp::Sext => RtVal::I(v.as_i()),
            CastOp::FpToSi => RtVal::I(truncate_int(v.as_f() as i64, to)),
            CastOp::SiToFp => RtVal::F(v.as_i() as f64),
            CastOp::FpTrunc => RtVal::F(v.as_f() as f32 as f64),
            CastOp::FpExt => RtVal::F(v.as_f()),
            CastOp::Bitcast => {
                if to.is_float() {
                    RtVal::F(f64::from_bits(v.to_bits() as u64))
                } else {
                    RtVal::I(v.to_bits())
                }
            }
        }
    }
}

fn truncate_int(v: i64, ty: Type) -> i64 {
    match ty {
        Type::I1 => v & 1,
        Type::I32 => v as i32 as i64,
        _ => v,
    }
}

fn mask_for(ty: Type) -> i64 {
    match ty {
        Type::I1 => 1,
        Type::I32 => 0xFFFF_FFFF,
        _ => -1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::CmpPred;

    fn run_fn(mb: ModuleBuilder, name: &str, args: &[RtVal]) -> Outcome {
        let m = mb.build();
        crate::verify(&m).expect("valid IR");
        let f = m.find_function(name).unwrap();
        Interpreter::new(&m).run(f, args).expect("executes")
    }

    #[test]
    fn arithmetic() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![Type::I64, Type::I64], Type::I64);
        {
            let mut b = mb.body();
            let s = b.add(b.param(0), b.param(1));
            let m = b.mul(s, b.const_i64(10));
            let d = b.sdiv(m, b.const_i64(3));
            b.ret(Some(d));
        }
        mb.finish_function();
        let out = run_fn(mb, "f", &[RtVal::I(2), RtVal::I(4)]);
        assert_eq!(out.ret, Some(RtVal::I(20)));
        assert_eq!(out.counts.int_mul, 1);
        assert_eq!(out.counts.int_div, 1);
    }

    #[test]
    fn float_math() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![Type::F64], Type::F64);
        {
            let mut b = mb.body();
            let sq = b.fmul(b.param(0), b.param(0));
            let r = b.sqrt(sq);
            b.ret(Some(r));
        }
        mb.finish_function();
        let out = run_fn(mb, "f", &[RtVal::F(-3.0)]);
        assert_eq!(out.ret, Some(RtVal::F(3.0)));
        assert_eq!(out.counts.fp_special, 1);
    }

    #[test]
    fn loop_sum_and_counts() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("sum", vec![Type::I64], Type::I64);
        {
            let mut b = mb.body();
            let acc = b.local(b.const_i64(0));
            b.for_loop(b.const_i64(0), b.param(0), 1, |b, i| {
                let c = b.load(acc, Type::I64);
                let n = b.add(c, i);
                b.store(acc, n);
            });
            let r = b.load(acc, Type::I64);
            b.ret(Some(r));
        }
        mb.finish_function();
        let out = run_fn(mb, "sum", &[RtVal::I(100)]);
        assert_eq!(out.ret, Some(RtVal::I(4950)));
        assert!(out.counts.branch >= 100);
        assert!(out.counts.load >= 100);
        assert!(out.counts.total_instructions() > 400);
    }

    #[test]
    fn memory_and_globals() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_const_global("tab", vec![10, 20, 30]);
        mb.begin_function("f", vec![Type::I64], Type::I64);
        {
            let mut b = mb.body();
            let base = b.global_addr(g);
            let p = b.gep(base, b.param(0));
            let v = b.load(p, Type::I64);
            b.ret(Some(v));
        }
        mb.finish_function();
        let out = run_fn(mb, "f", &[RtVal::I(2)]);
        assert_eq!(out.ret, Some(RtVal::I(30)));
    }

    #[test]
    fn calls_and_recursion() {
        let mut mb = ModuleBuilder::new("t");
        let fib = mb.declare("fib", vec![Type::I64], Type::I64);
        mb.begin_existing(fib);
        {
            let mut b = mb.body();
            let c = b.cmp(CmpPred::Lt, b.param(0), b.const_i64(2));
            let v = b.if_else(
                c,
                Type::I64,
                |b| b.param(0),
                |b| {
                    let n1 = b.sub(b.param(0), b.const_i64(1));
                    let n2 = b.sub(b.param(0), b.const_i64(2));
                    let a = b.call(fib, vec![n1], Type::I64);
                    let c2 = b.call(fib, vec![n2], Type::I64);
                    b.add(a, c2)
                },
            );
            b.ret(Some(v));
        }
        mb.finish_function();
        let out = run_fn(mb, "fib", &[RtVal::I(12)]);
        assert_eq!(out.ret, Some(RtVal::I(144)));
        assert!(out.counts.call > 100);
        assert_eq!(out.counts.ret, out.counts.call + 1);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![Type::I64], Type::I64);
        {
            let mut b = mb.body();
            let d = b.sdiv(b.const_i64(1), b.param(0));
            b.ret(Some(d));
        }
        mb.finish_function();
        let m = mb.build();
        let f = m.find_function("f").unwrap();
        let e = Interpreter::new(&m).run(f, &[RtVal::I(0)]).unwrap_err();
        assert_eq!(e, ExecError::DivByZero);
    }

    #[test]
    fn oob_traps() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![], Type::I64);
        {
            let mut b = mb.body();
            let p = b.alloca(1);
            let bad = b.gep(p, b.const_i64(1 << 40));
            let v = b.load(bad, Type::I64);
            b.ret(Some(v));
        }
        mb.finish_function();
        let m = mb.build();
        let f = m.find_function("f").unwrap();
        let e = Interpreter::new(&m).run(f, &[]).unwrap_err();
        assert!(matches!(e, ExecError::MemoryOutOfBounds { .. }));
    }

    #[test]
    fn fuel_exhaustion() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("inf", vec![], Type::Void);
        {
            let mut b = mb.body();
            let l = b.new_block();
            b.br(l);
            b.switch_to(l);
            b.br(l);
        }
        mb.finish_function();
        let m = mb.build();
        let f = m.find_function("inf").unwrap();
        let cfg = InterpConfig {
            fuel: 1000,
            ..InterpConfig::default()
        };
        let e = Interpreter::with_config(&m, cfg).run(f, &[]).unwrap_err();
        assert_eq!(e, ExecError::OutOfFuel);
    }

    #[test]
    fn memset_memcpy() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![], Type::I64);
        {
            let mut b = mb.body();
            let src = b.alloca(4);
            let dst = b.alloca(4);
            b.memset(src, Value::i64(7), Value::i64(4));
            b.memcpy(dst, src, Value::i64(4));
            let p3 = b.gep(dst, b.const_i64(3));
            let v = b.load(p3, Type::I64);
            b.ret(Some(v));
        }
        mb.finish_function();
        let out = run_fn(mb, "f", &[]);
        assert_eq!(out.ret, Some(RtVal::I(7)));
        assert_eq!(out.counts.memset_cells, 4);
        assert_eq!(out.counts.memcpy_cells, 4);
    }

    #[test]
    fn i32_wrapping() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![Type::I32], Type::I32);
        {
            let mut b = mb.body();
            let r = b.add(b.param(0), b.const_i32(1));
            b.ret(Some(r));
        }
        mb.finish_function();
        let out = run_fn(mb, "f", &[RtVal::I(i32::MAX as i64)]);
        assert_eq!(out.ret, Some(RtVal::I(i32::MIN as i64)));
    }

    #[test]
    fn hinted_branch_counting() {
        let mut mb = ModuleBuilder::new("t");
        mb.begin_function("f", vec![Type::I64], Type::I64);
        {
            let mut b = mb.body();
            let t = b.new_block();
            let e = b.new_block();
            let c = b.cmp(CmpPred::Gt, b.param(0), b.const_i64(0));
            b.cond_br(c, t, e);
            let fun = b.func();
            if let Terminator::CondBr { weight, .. } = &mut fun.block_mut(BlockId::ENTRY).term {
                *weight = Some(90);
            }
            b.switch_to(t);
            b.ret(Some(b.const_i64(1)));
            b.switch_to(e);
            b.ret(Some(b.const_i64(0)));
        }
        mb.finish_function();
        let m = mb.build();
        let f = m.find_function("f").unwrap();
        let out = Interpreter::new(&m).run(f, &[RtVal::I(5)]).unwrap();
        assert_eq!(out.counts.hinted_correct, 1);
        let out = Interpreter::new(&m).run(f, &[RtVal::I(-5)]).unwrap();
        assert_eq!(out.counts.hinted_wrong, 1);
    }
}
