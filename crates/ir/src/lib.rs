//! A typed SSA intermediate representation for the MLComp reproduction.
//!
//! This crate provides the compiler substrate on which the whole MLComp
//! methodology operates. It mirrors the subset of LLVM IR that the 48
//! optimization phases of the paper's Table VI need in order to interact the
//! way they do in LLVM: a control-flow graph of basic blocks over SSA values,
//! `alloca`/`load`/`store` memory (so `mem2reg`/`sroa` are meaningful), phi
//! nodes, direct and indirect calls, pointer arithmetic and branch-weight
//! metadata.
//!
//! The crate is organized as:
//!
//! * [`types`], [`value`], [`inst`], [`block`], [`function`], [`module`] —
//!   the IR data structures themselves;
//! * [`builder`] — an ergonomic way to construct functions, including a
//!   structured counted-loop helper used by the benchmark suites;
//! * [`verifier`] — structural and type well-formedness checks;
//! * [`analysis`] — CFG, dominator tree, natural loops, call graph and
//!   def-use analyses shared by the optimization phases;
//! * [`interp`] — a profiling interpreter that executes a module and returns
//!   per-operation dynamic counts, the raw material for the platform cost
//!   models.
//!
//! # Example
//!
//! ```
//! use mlcomp_ir::{ModuleBuilder, Type, BinOp};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let f = mb.begin_function("add1", vec![Type::I64], Type::I64);
//! {
//!     let mut b = mb.body();
//!     let x = b.param(0);
//!     let one = b.const_i64(1);
//!     let sum = b.bin(BinOp::Add, x, one);
//!     b.ret(Some(sum));
//! }
//! mb.finish_function();
//! let module = mb.build();
//! assert!(mlcomp_ir::verify(&module).is_ok());
//! let _ = f;
//! ```

pub mod analysis;
pub mod block;
pub mod builder;
pub mod display;
pub mod function;
pub mod inst;
pub mod interp;
pub mod module;
pub mod types;
pub mod value;
pub mod verifier;

pub use block::{BasicBlock, BlockId, Terminator};
pub use builder::{FunctionBuilder, ModuleBuilder};
pub use function::{FnAttrs, FuncId, Function};
pub use inst::{BinOp, Callee, CastOp, CmpPred, Inst, InstId, InstKind, UnOp};
pub use interp::{DynCounts, ExecError, InterpConfig, Interpreter, Outcome, RtVal};
pub use module::{Global, GlobalId, Module};
pub use types::Type;
pub use value::Value;
pub use verifier::{verify, VerifyError};
