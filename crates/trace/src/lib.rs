//! `mlcomp-trace` — structured tracing, metrics, and phase-level profiling
//! for the MLComp pipeline.
//!
//! Three primitives, all thread-safe and zero-external-dep:
//!
//! * **Spans** ([`span`]) — hierarchical timed regions with key/value
//!   fields. Each thread keeps its own span-path stack; a span's `path` is
//!   the slash-joined chain of enclosing span names on that thread.
//! * **Counters / gauges / histograms** ([`counter`], [`gauge`],
//!   [`observe`]) — lock-sharded accumulators merged deterministically when
//!   [`flush`] drains them into the sink.
//! * **Event sink** ([`TraceSink`]) — pluggable destination:
//!   [`RingSink`] (in-memory, for tests), [`JsonlSink`] (one JSON object
//!   per line, for runs), and [`NullSink`] (the default: drops everything
//!   and keeps instrumentation disabled).
//!
//! # Determinism contract
//!
//! Instrumentation is strictly out-of-band: it reads clocks and emits
//! events but never feeds anything back into seeds, iteration order, or
//! numeric results. With no sink (or [`NullSink`]) installed, every
//! instrumented call site reduces to a single relaxed atomic load.
//! `tests/determinism.rs` asserts that datasets extracted with a
//! [`JsonlSink`] attached are byte-identical to untraced runs.
//!
//! # Usage
//!
//! ```
//! use std::sync::Arc;
//!
//! let sink = Arc::new(mlcomp_trace::RingSink::new(64));
//! let events = mlcomp_trace::with_sink(sink.clone(), || {
//!     let mut span = mlcomp_trace::span("work");
//!     span.field("items", 3u64);
//!     mlcomp_trace::counter("work.done", 3);
//!     drop(span);
//!     sink.take()
//! });
//! assert!(!events.is_empty());
//! ```
//!
//! For binaries, `MLCOMP_TRACE=path.jsonl` plus [`init_from_env`] installs
//! a [`JsonlSink`]; the returned guard flushes pending metrics on drop.

mod metrics;
mod sink;

pub use sink::{Field, FieldValue, JsonlSink, NullSink, RingSink, TraceEvent, TraceSink};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Environment variable checked by [`init_from_env`].
pub const TRACE_ENV: &str = "MLCOMP_TRACE";

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);
/// Serializes [`with_sink`] scopes so concurrent tests in one process
/// never observe each other's sink.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static THREAD_COUNTER: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = THREAD_COUNTER.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Whether instrumentation is currently on. This is the fast-path check:
/// one relaxed atomic load, nothing else, when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

fn current_sink() -> Option<Arc<dyn TraceSink>> {
    SINK.read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned()
}

fn emit(event: TraceEvent) {
    if let Some(sink) = current_sink() {
        sink.record(event);
    }
}

/// Install `sink` as the process-global event destination.
///
/// Instrumentation turns on iff `sink.is_enabled()` — installing the
/// default [`NullSink`] keeps every call site on the disabled fast path.
pub fn install(sink: Arc<dyn TraceSink>) {
    let on = sink.is_enabled();
    {
        let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
        *slot = Some(sink);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Flush pending metrics to the current sink, then remove it and disable
/// instrumentation.
pub fn uninstall() {
    flush();
    ENABLED.store(false, Ordering::Relaxed);
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = None;
}

/// Drain the sharded metric registries into the sink as `Counter`,
/// `Gauge`, and `Hist` events, then flush the sink itself.
///
/// Counters/gauges/histograms are cumulative between flushes; the drain
/// order is deterministic (sorted by name) and histogram values are sorted
/// before any float accumulation.
pub fn flush() {
    let snapshot = metrics::drain();
    for (name, value) in snapshot.counters {
        emit(TraceEvent::Counter { name, value });
    }
    for (name, value) in snapshot.gauges {
        emit(TraceEvent::Gauge { name, value });
    }
    for (name, values) in snapshot.hists {
        let (min, max, mean, p50, p90, p99) = metrics::summarize(&values);
        emit(TraceEvent::Hist {
            name,
            count: values.len() as u64,
            min,
            max,
            mean,
            p50,
            p90,
            p99,
        });
    }
    if let Some(sink) = current_sink() {
        sink.flush();
    }
}

/// Run `f` with `sink` installed, flushing and uninstalling afterwards
/// (also on panic). Scopes are serialized process-wide, so parallel tests
/// using `with_sink` never interleave sinks.
pub fn with_sink<T>(sink: Arc<dyn TraceSink>, f: impl FnOnce() -> T) -> T {
    let _scope = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            uninstall();
        }
    }
    install(sink);
    let _restore = Restore;
    f()
}

/// Flush-on-drop guard returned by [`init_from_env`]. Hold it for the
/// lifetime of `main` so cumulative metrics reach the trace file.
#[derive(Debug)]
pub struct FlushGuard {
    path: String,
}

impl FlushGuard {
    /// The path of the JSONL trace being written.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        flush();
    }
}

/// If `MLCOMP_TRACE=path.jsonl` is set, install a [`JsonlSink`] writing to
/// that path and return a [`FlushGuard`]. Returns `None` (and leaves
/// tracing disabled) when the variable is unset, empty, or the file cannot
/// be created.
pub fn init_from_env() -> Option<FlushGuard> {
    let path = std::env::var(TRACE_ENV).ok()?;
    if path.is_empty() {
        return None;
    }
    match JsonlSink::create(&path) {
        Ok(sink) => {
            install(Arc::new(sink));
            Some(FlushGuard { path })
        }
        Err(err) => {
            eprintln!("mlcomp-trace: cannot create {path}: {err}");
            None
        }
    }
}

/// Add `delta` to a named monotonic counter (no-op while disabled).
#[inline]
pub fn counter(name: &str, delta: u64) {
    if enabled() {
        metrics::add_counter(name, delta);
    }
}

/// Set a named last-value-wins gauge (no-op while disabled).
#[inline]
pub fn gauge(name: &str, value: f64) {
    if enabled() {
        metrics::set_gauge(name, value);
    }
}

/// Record one observation in a named histogram (no-op while disabled).
#[inline]
pub fn observe(name: &str, value: f64) {
    if enabled() {
        metrics::observe_hist(name, value);
    }
}

/// Emit one sample of a named time series (no-op while disabled).
/// Unlike the registry metrics, points are delivered to the sink
/// immediately, preserving their emission order per thread.
#[inline]
pub fn point(series: &str, x: f64, y: f64) {
    if enabled() {
        emit(TraceEvent::Point {
            series: series.to_string(),
            x,
            y,
        });
    }
}

struct ActiveSpan {
    name: &'static str,
    path: String,
    start_ns: u64,
    start: Instant,
    fields: Vec<Field>,
}

/// RAII timed region. Created by [`span`]; emits a `Span` event with its
/// wall-clock duration when dropped. While tracing is disabled the guard
/// is inert and costs one atomic load to construct.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

/// Open a named span. Nested spans on the same thread extend the path
/// (`"extraction/extract.item/phase"`), which is how `mlcomp-report`
/// reconstructs self vs. total time.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            path,
            start_ns: now_ns(),
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Attach a key/value annotation (no-op on an inert guard).
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(active) = &mut self.active {
            active.fields.push(Field {
                key,
                value: value.into(),
            });
        }
    }

    /// Whether this guard is actually recording (tracing was enabled when
    /// it was created). Lets callers skip expensive field computation.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        emit(TraceEvent::Span {
            name: active.name,
            path: active.path,
            start_ns: active.start_ns,
            dur_ns,
            thread: thread_id(),
            fields: active.fields,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(events: &[TraceEvent]) -> Vec<(&str, &str)> {
        events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span { name, path, .. } => Some((*name, path.as_str())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn disabled_by_default_and_spans_are_inert() {
        let _scope = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        let mut s = span("never");
        assert!(!s.is_recording());
        s.field("ignored", 1u64);
        drop(s);
        // No panic, nothing recorded, and the thread-local stack is empty.
        SPAN_STACK.with(|st| assert!(st.borrow().is_empty()));
    }

    #[test]
    fn null_sink_keeps_tracing_disabled() {
        with_sink(Arc::new(NullSink), || {
            assert!(!enabled());
        });
    }

    #[test]
    fn nested_spans_build_slash_paths() {
        let ring = Arc::new(RingSink::new(64));
        let events = with_sink(ring.clone(), || {
            let outer = span("outer");
            {
                let mut inner = span("inner");
                inner.field("k", "v");
            }
            drop(outer);
            ring.take()
        });
        assert_eq!(spans(&events), vec![("inner", "outer/inner"), ("outer", "outer")]);
        match &events[0] {
            TraceEvent::Span { fields, .. } => {
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].key, "k");
                assert_eq!(fields[0].value, FieldValue::Str("v".to_string()));
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn metrics_merge_deterministically_across_threads() {
        let ring = Arc::new(RingSink::new(256));
        let events = with_sink(ring.clone(), || {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for i in 0..100u64 {
                            counter("m.count", 1);
                            observe("m.hist", i as f64);
                        }
                    });
                }
            });
            gauge("m.gauge", 7.5);
            flush();
            ring.take()
        });
        let mut saw_counter = false;
        let mut saw_hist = false;
        let mut saw_gauge = false;
        for e in &events {
            match e {
                TraceEvent::Counter { name, value } if name == "m.count" => {
                    assert_eq!(*value, 400);
                    saw_counter = true;
                }
                TraceEvent::Hist {
                    name,
                    count,
                    min,
                    max,
                    ..
                } if name == "m.hist" => {
                    assert_eq!(*count, 400);
                    assert_eq!(*min, 0.0);
                    assert_eq!(*max, 99.0);
                    saw_hist = true;
                }
                TraceEvent::Gauge { name, value } if name == "m.gauge" => {
                    assert_eq!(*value, 7.5);
                    saw_gauge = true;
                }
                _ => {}
            }
        }
        assert!(saw_counter && saw_hist && saw_gauge);
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_line_per_event() {
        let path = std::env::temp_dir().join("mlcomp_trace_unit_test.jsonl");
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        with_sink(sink, || {
            let mut s = span("io \"quoted\"\npath");
            s.field("note", "line1\nline2");
            drop(s);
            counter("io.events", 2);
            flush();
        });
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "expected span + counter lines: {text:?}");
        for line in &lines {
            assert!(line.starts_with("{\"t\":\""), "malformed line: {line}");
            assert!(line.ends_with('}'), "malformed line: {line}");
            assert!(!line.contains('\u{0}'));
        }
        assert!(text.contains("\\n"), "newline must be escaped: {text:?}");
    }

    #[test]
    fn counters_are_cumulative_until_flush() {
        let ring = Arc::new(RingSink::new(64));
        let events = with_sink(ring.clone(), || {
            counter("c.twice", 1);
            counter("c.twice", 2);
            flush();
            ring.take()
        });
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Counter { name, value } if name == "c.twice" && *value == 3)));
    }
}
