//! Trace events and the pluggable sinks that receive them.
//!
//! Events are plain data: a [`TraceEvent`] carries everything a consumer
//! needs, so sinks never reach back into the tracer. The JSONL encoding is
//! hand-rolled (this crate has zero dependencies) and matches the schema
//! documented in DESIGN.md §11: one JSON object per line, discriminated by
//! the `"t"` key.

use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A single key/value annotation attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name; static so span annotation never allocates for the key.
    pub key: &'static str,
    /// Field value.
    pub value: FieldValue,
}

/// The value of a span [`Field`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One observability event, emitted out-of-band by instrumented code.
///
/// Timing values are nanoseconds relative to a process-local monotonic
/// epoch; they are never fed back into seeds, ordering, or results.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A completed hierarchical span.
    Span {
        /// Leaf name of the span (e.g. `"phase"`).
        name: &'static str,
        /// Slash-joined path of enclosing span names on this thread.
        path: String,
        /// Start time, nanoseconds since the tracer epoch.
        start_ns: u64,
        /// Wall-clock duration in nanoseconds.
        dur_ns: u64,
        /// Tracer-local id of the emitting thread.
        thread: u64,
        /// Key/value annotations recorded while the span was open.
        fields: Vec<Field>,
    },
    /// A monotonically accumulated counter, reported at drain time.
    Counter {
        /// Counter name (e.g. `"extraction.retries"`).
        name: String,
        /// Total accumulated value.
        value: u64,
    },
    /// A last-value-wins gauge, reported at drain time.
    Gauge {
        /// Gauge name (e.g. `"pool.queue_depth"`).
        name: String,
        /// Most recently set value.
        value: f64,
    },
    /// Summary statistics of a histogram, reported at drain time.
    Hist {
        /// Histogram name (e.g. `"search.accuracy"`).
        name: String,
        /// Number of observations.
        count: u64,
        /// Minimum observation.
        min: f64,
        /// Maximum observation.
        max: f64,
        /// Arithmetic mean (values sorted before summing for determinism).
        mean: f64,
        /// 50th percentile.
        p50: f64,
        /// 90th percentile.
        p90: f64,
        /// 99th percentile.
        p99: f64,
    },
    /// One sample of a named time series (e.g. the RL learning curve).
    Point {
        /// Series name (e.g. `"rl.mean_return"`).
        series: String,
        /// X coordinate — an episode index, item index, or timestamp.
        x: f64,
        /// Y coordinate — the observed value.
        y: f64,
    },
}

fn escape_json_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn f64_json(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
            s.push_str(".0");
        }
        s
    } else {
        // JSON has no NaN/Infinity; mirror compat serde_json and emit null.
        "null".to_string()
    }
}

impl TraceEvent {
    /// Encode this event as one line of the JSONL schema (no trailing `\n`).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        match self {
            TraceEvent::Span {
                name,
                path,
                start_ns,
                dur_ns,
                thread,
                fields,
            } => {
                out.push_str("{\"t\":\"span\",\"name\":");
                escape_json_into(&mut out, name);
                out.push_str(",\"path\":");
                escape_json_into(&mut out, path);
                out.push_str(&format!(
                    ",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns},\"tid\":{thread},\"fields\":{{"
                ));
                for (i, f) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_json_into(&mut out, f.key);
                    out.push(':');
                    match &f.value {
                        FieldValue::U64(v) => out.push_str(&v.to_string()),
                        FieldValue::I64(v) => out.push_str(&v.to_string()),
                        FieldValue::F64(v) => out.push_str(&f64_json(*v)),
                        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                        FieldValue::Str(v) => escape_json_into(&mut out, v),
                    }
                }
                out.push_str("}}");
            }
            TraceEvent::Counter { name, value } => {
                out.push_str("{\"t\":\"counter\",\"name\":");
                escape_json_into(&mut out, name);
                out.push_str(&format!(",\"value\":{value}}}"));
            }
            TraceEvent::Gauge { name, value } => {
                out.push_str("{\"t\":\"gauge\",\"name\":");
                escape_json_into(&mut out, name);
                out.push_str(&format!(",\"value\":{}}}", f64_json(*value)));
            }
            TraceEvent::Hist {
                name,
                count,
                min,
                max,
                mean,
                p50,
                p90,
                p99,
            } => {
                out.push_str("{\"t\":\"hist\",\"name\":");
                escape_json_into(&mut out, name);
                out.push_str(&format!(
                    ",\"count\":{count},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                    f64_json(*min),
                    f64_json(*max),
                    f64_json(*mean),
                    f64_json(*p50),
                    f64_json(*p90),
                    f64_json(*p99),
                ));
            }
            TraceEvent::Point { series, x, y } => {
                out.push_str("{\"t\":\"point\",\"series\":");
                escape_json_into(&mut out, series);
                out.push_str(&format!(
                    ",\"x\":{},\"y\":{}}}",
                    f64_json(*x),
                    f64_json(*y)
                ));
            }
        }
        out
    }
}

/// Destination for [`TraceEvent`]s. Implementations must tolerate being
/// called concurrently from many threads.
pub trait TraceSink: Send + Sync {
    /// Receive one event. Must not panic; errors are swallowed (tracing is
    /// best-effort and must never abort the pipeline).
    fn record(&self, event: TraceEvent);

    /// Flush any buffered output. Default: no-op.
    fn flush(&self) {}

    /// Whether installing this sink should turn instrumentation on.
    ///
    /// [`NullSink`] returns `false`, so a pipeline with the default sink
    /// attached still takes the single-atomic-load fast path everywhere.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The default sink: drops every event and keeps instrumentation disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Bounded in-memory sink for tests: keeps the most recent `capacity`
/// events and lets the test inspect them after the traced section.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl RingSink {
    /// Create a ring buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let guard = self.events.lock().unwrap_or_else(|e| e.into_inner());
        guard.iter().cloned().collect()
    }

    /// Drain and return the buffered events, oldest first.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut guard = self.events.lock().unwrap_or_else(|e| e.into_inner());
        guard.drain(..).collect()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: TraceEvent) {
        let mut guard = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if guard.len() == self.capacity {
            guard.pop_front();
        }
        guard.push_back(event);
    }
}

/// Sink that appends one JSON object per line to a file.
///
/// Each event is serialized to a complete line and written with a single
/// `write_all` under a mutex, so concurrent writers never tear lines and a
/// crash loses at most the event in flight (there is no userspace buffer
/// to lose — the global sink slot lives in a `static` and would never run
/// destructors at process exit).
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    file: Mutex<File>,
}

impl JsonlSink {
    /// Create (truncate) `path` and return a sink writing to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSink {
            path,
            file: Mutex::new(file),
        })
    }

    /// The path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: TraceEvent) {
        let mut line = event.to_json_line();
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // Best-effort: a full disk must not take down the pipeline.
        let _ = file.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = file.flush();
    }
}
