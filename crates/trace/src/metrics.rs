//! Lock-sharded counter/gauge/histogram registry.
//!
//! Writers hash their thread onto one of a fixed number of shards so hot
//! loops on different worker threads rarely contend on the same mutex.
//! [`drain`] merges all shards into deterministically ordered `BTreeMap`s:
//! counters sum, gauges keep the globally most recent write (a process-wide
//! sequence number breaks ties across shards), histogram observations are
//! concatenated and sorted before any float accumulation so summary
//! statistics do not depend on thread interleaving.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

const SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, (u64, f64)>>,
    hists: Mutex<HashMap<String, Vec<f64>>>,
}

struct Registry {
    shards: Vec<Shard>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static GAUGE_SEQ: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        shards: (0..SHARDS).map(|_| Shard::default()).collect(),
    })
}

static SHARD_COUNTER: AtomicU64 = AtomicU64::new(0);

fn shard() -> &'static Shard {
    // Round-robin shard assignment per thread: consecutive worker threads
    // land on distinct shards, so hot loops rarely share a mutex.
    thread_local! {
        static SHARD_IDX: usize =
            (SHARD_COUNTER.fetch_add(1, Ordering::Relaxed) as usize) % SHARDS;
    }
    let idx = SHARD_IDX.with(|i| *i);
    &registry().shards[idx]
}

/// Add `delta` to the named counter.
pub(crate) fn add_counter(name: &str, delta: u64) {
    let mut map = shard()
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    match map.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            map.insert(name.to_string(), delta);
        }
    }
}

/// Set the named gauge to `value` (last global write wins at drain time).
pub(crate) fn set_gauge(name: &str, value: f64) {
    let seq = GAUGE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut map = shard().gauges.lock().unwrap_or_else(|e| e.into_inner());
    map.insert(name.to_string(), (seq, value));
}

/// Record one observation in the named histogram.
pub(crate) fn observe_hist(name: &str, value: f64) {
    let mut map = shard().hists.lock().unwrap_or_else(|e| e.into_inner());
    match map.get_mut(name) {
        Some(v) => v.push(value),
        None => {
            map.insert(name.to_string(), vec![value]);
        }
    }
}

/// Snapshot of all metric families, deterministically ordered.
pub(crate) struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub hists: BTreeMap<String, Vec<f64>>,
}

/// Drain every shard, resetting the registry to empty.
pub(crate) fn drain() -> MetricsSnapshot {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut hists: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for sh in &registry().shards {
        for (k, v) in std::mem::take(
            &mut *sh.counters.lock().unwrap_or_else(|e| e.into_inner()),
        ) {
            *counters.entry(k).or_insert(0) += v;
        }
        for (k, (seq, v)) in std::mem::take(
            &mut *sh.gauges.lock().unwrap_or_else(|e| e.into_inner()),
        ) {
            match gauges.get(&k) {
                Some((prev_seq, _)) if *prev_seq > seq => {}
                _ => {
                    gauges.insert(k, (seq, v));
                }
            }
        }
        for (k, mut v) in std::mem::take(
            &mut *sh.hists.lock().unwrap_or_else(|e| e.into_inner()),
        ) {
            hists.entry(k).or_default().append(&mut v);
        }
    }
    for values in hists.values_mut() {
        values.sort_by(f64::total_cmp);
    }
    MetricsSnapshot {
        counters,
        gauges: gauges.into_iter().map(|(k, (_, v))| (k, v)).collect(),
        hists,
    }
}

/// Summary statistics of a *sorted* slice of observations.
pub(crate) fn summarize(sorted: &[f64]) -> (f64, f64, f64, f64, f64, f64) {
    if sorted.is_empty() {
        return (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    }
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let pct = |q: f64| {
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    (min, max, mean, pct(0.50), pct(0.90), pct(0.99))
}
