//! Symmetric eigendecomposition (cyclic Jacobi) and an SVD built on it.

use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix: `A = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, aligned with [`values`](Self::values).
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix using the cyclic
/// Jacobi method.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn symmetric_eigen(a: &Matrix) -> SymmetricEigen {
    assert_eq!(a.rows(), a.cols(), "eigen needs a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..64 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off < 1e-22 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if m[(p, q)].abs() < 1e-15 {
                    continue;
                }
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * m[(p, q)]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = v.select_columns(&order);
    SymmetricEigen { values, vectors }
}

/// Thin singular value decomposition `A = U · diag(σ) · Vᵀ`, computed via
/// the eigendecomposition of `AᵀA` (adequate for the well-conditioned
/// feature matrices this workspace handles).
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns), `m × r`.
    pub u: Matrix,
    /// Singular values, descending.
    pub singular_values: Vec<f64>,
    /// Right singular vectors (columns), `n × r`.
    pub v: Matrix,
}

/// Computes the thin SVD of an arbitrary matrix.
pub fn svd(a: &Matrix) -> Svd {
    let eig = symmetric_eigen(&a.gram());
    let n = a.cols();
    let singular_values: Vec<f64> = eig
        .values
        .iter()
        .map(|&l| if l > 0.0 { l.sqrt() } else { 0.0 })
        .collect();
    // U = A · V · diag(1/σ); zero-σ columns left as zeros.
    let av = a.matmul(&eig.vectors);
    let mut u = Matrix::zeros(a.rows(), n);
    for j in 0..n {
        let s = singular_values[j];
        if s > 1e-12 {
            for i in 0..a.rows() {
                u[(i, j)] = av[(i, j)] / s;
            }
        }
    }
    Svd {
        u,
        singular_values,
        v: eig.vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_symmetric() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let e = symmetric_eigen(&a);
        // V·diag(λ)·Vᵀ == A
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        assert!(rec.sub(&a).frobenius_norm() < 1e-8, "{rec}");
        // Eigenvalues descending.
        assert!(e.values[0] >= e.values[1] && e.values[1] >= e.values[2]);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 4.0]]);
        let e = symmetric_eigen(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.sub(&Matrix::identity(2)).frobenius_norm() < 1e-9);
    }

    #[test]
    fn svd_reconstructs() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = svd(&a);
        let mut d = Matrix::zeros(2, 2);
        for i in 0..2 {
            d[(i, i)] = s.singular_values[i];
        }
        let rec = s.u.matmul(&d).matmul(&s.v.transpose());
        assert!(rec.sub(&a).frobenius_norm() < 1e-8);
        assert!(s.singular_values[0] >= s.singular_values[1]);
    }

    #[test]
    fn svd_of_rank_deficient() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let s = svd(&a);
        assert!(s.singular_values[1].abs() < 1e-8, "rank 1 → σ₂ ≈ 0");
    }
}
