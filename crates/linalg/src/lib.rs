//! Dense linear algebra for the MLComp ML stack.
//!
//! Self-contained implementations of everything the preprocessing
//! algorithms and regression models in `mlcomp-ml` need: a row-major
//! [`Matrix`], LU/Cholesky/QR solvers, a symmetric (Jacobi) eigensolver,
//! an SVD built on it, and descriptive statistics.
//!
//! # Example
//!
//! ```
//! use mlcomp_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let b = vec![1.0, 2.0];
//! let x = a.solve(&b).unwrap();
//! let r = a.matvec(&x);
//! assert!((r[0] - 1.0).abs() < 1e-10 && (r[1] - 2.0).abs() < 1e-10);
//! ```

pub mod decomp;
pub mod serde_bits;
pub mod eigen;
pub mod matrix;
pub mod stats;

pub use decomp::{Cholesky, Lu, Qr, SingularMatrixError};
pub use eigen::{svd, symmetric_eigen, Svd, SymmetricEigen};
pub use matrix::Matrix;
pub use stats::{mean, median, percentile, std_dev, variance};
