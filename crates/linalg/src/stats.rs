//! Descriptive statistics used by the scalers and quantile transformer.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (0 for fewer than 2 samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (0 for an empty slice).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile `p` in `[0, 100]` (0 for empty input).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(median(&xs), 2.5);
    }

    #[test]
    fn percentiles() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 25.0), 20.0);
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(percentile(&[7.0], 90.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn bad_percentile_panics() {
        percentile(&[1.0], 101.0);
    }
}
