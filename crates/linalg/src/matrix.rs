//! A row-major dense matrix of `f64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use mlcomp_linalg::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    #[serde(with = "crate::serde_bits::vec_f64")]
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Builds a matrix from owned row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_vec_rows(rows: Vec<Vec<f64>>) -> Matrix {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Gram matrix `selfᵀ · self` (used by normal equations and PCA).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Solves `self · x = b` via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SingularMatrixError`] for singular systems.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, crate::SingularMatrixError> {
        crate::Lu::new(self)?.solve(b)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Extracts the sub-matrix of the given columns, preserving order.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            for (nj, &j) in cols.iter().enumerate() {
                out[(i, nj)] = self[(i, j)];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            let row: Vec<String> = self.row(i).iter().map(|x| format!("{x:>10.4}")).collect();
            writeln!(f, "[{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(1, 1)], 50.0);
        let t = a.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        assert_eq!(g.rows(), 2);
        assert_eq!(g[(0, 1)], g[(1, 0)]);
        assert!(g[(0, 0)] > 0.0 && g[(1, 1)] > 0.0);
        assert_eq!(g[(0, 0)], 1.0 + 9.0 + 25.0);
    }

    #[test]
    fn arithmetic() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).row(0), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).row(0), &[2.0, 4.0]);
        assert!((a.frobenius_norm() - (5.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn column_selection() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = a.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }
}
