//! Bit-exact (de)serialization helpers for `f64` payloads.
//!
//! Some JSON parsers round-trip `f64` text imprecisely (last-ULP drift).
//! Model artifacts — trained policies, fitted projections — must reload
//! *decision-identically*, so their float containers serialize as raw
//! IEEE-754 bit patterns via these `#[serde(with = …)]` modules.
//!
//! The function signatures follow the workspace serde stand-in's value
//! model: `serialize` builds a [`serde::Value`], `deserialize` reads one.

/// `Vec<f64>` ⇄ `Vec<u64>` bit patterns.
pub mod vec_f64 {
    use serde::{Error, Serialize, Value};

    /// Serializes the values as `u64` bit patterns.
    pub fn serialize(v: &[f64]) -> Value {
        let bits: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
        bits.serialize()
    }

    /// Deserializes `u64` bit patterns back into exact `f64` values.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not an array of `u64`.
    pub fn deserialize(v: &Value) -> Result<Vec<f64>, Error> {
        let bits: Vec<u64> = serde::Deserialize::deserialize(v)?;
        Ok(bits.into_iter().map(f64::from_bits).collect())
    }
}

/// Scalar `f64` ⇄ `u64` bit pattern.
pub mod f64_bits {
    use serde::{Error, Serialize, Value};

    /// Serializes the value as its `u64` bit pattern.
    pub fn serialize(v: &f64) -> Value {
        v.to_bits().serialize()
    }

    /// Deserializes a `u64` bit pattern back into the exact `f64`.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not a `u64`.
    pub fn deserialize(v: &Value) -> Result<f64, Error> {
        let bits: u64 = serde::Deserialize::deserialize(v)?;
        Ok(f64::from_bits(bits))
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Holder {
        #[serde(with = "super::vec_f64")]
        xs: Vec<f64>,
        #[serde(with = "super::f64_bits")]
        y: f64,
    }

    #[test]
    fn exact_roundtrip_of_awkward_floats() {
        let h = Holder {
            xs: vec![0.42163597790432933, -1e-308, f64::MAX, 0.1 + 0.2],
            y: 0.4216359779043294,
        };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back, "bit patterns must survive JSON exactly");
    }
}
