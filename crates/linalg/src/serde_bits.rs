//! Bit-exact (de)serialization helpers for `f64` payloads.
//!
//! Some JSON parsers round-trip `f64` text imprecisely (last-ULP drift).
//! Model artifacts — trained policies, fitted projections — must reload
//! *decision-identically*, so their float containers serialize as raw
//! IEEE-754 bit patterns via these `#[serde(with = …)]` modules.

/// `Vec<f64>` ⇄ `Vec<u64>` bit patterns.
pub mod vec_f64 {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    /// Serializes the values as `u64` bit patterns.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's errors.
    pub fn serialize<S: Serializer>(v: &[f64], s: S) -> Result<S::Ok, S::Error> {
        let bits: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
        bits.serialize(s)
    }

    /// Deserializes `u64` bit patterns back into exact `f64` values.
    ///
    /// # Errors
    ///
    /// Propagates the deserializer's errors.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<f64>, D::Error> {
        let bits: Vec<u64> = Vec::deserialize(d)?;
        Ok(bits.into_iter().map(f64::from_bits).collect())
    }
}

/// Scalar `f64` ⇄ `u64` bit pattern.
pub mod f64_bits {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    /// Serializes the value as its `u64` bit pattern.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's errors.
    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        v.to_bits().serialize(s)
    }

    /// Deserializes a `u64` bit pattern back into the exact `f64`.
    ///
    /// # Errors
    ///
    /// Propagates the deserializer's errors.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(f64::from_bits(u64::deserialize(d)?))
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Holder {
        #[serde(with = "super::vec_f64")]
        xs: Vec<f64>,
        #[serde(with = "super::f64_bits")]
        y: f64,
    }

    #[test]
    fn exact_roundtrip_of_awkward_floats() {
        let h = Holder {
            xs: vec![0.42163597790432933, -1e-308, f64::MAX, 0.1 + 0.2],
            y: 0.4216359779043294,
        };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back, "bit patterns must survive JSON exactly");
    }
}
