//! Matrix decompositions: LU (partial pivoting), Cholesky and Householder
//! QR.

use crate::matrix::Matrix;
use std::fmt;

/// The system could not be factored (singular / not positive definite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("matrix is singular or not positive definite")
    }
}

impl std::error::Error for SingularMatrixError {}

/// LU decomposition with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    piv: Vec<usize>,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot is (numerically) zero.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(a: &Matrix) -> Result<Lu, SingularMatrixError> {
        assert_eq!(a.rows(), a.cols(), "LU needs a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot selection.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in k + 1..n {
                if lu[(i, k)].abs() > max {
                    max = lu[(i, k)].abs();
                    p = i;
                }
            }
            if max < 1e-12 {
                return Err(SingularMatrixError);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                piv.swap(k, p);
            }
            for i in k + 1..n {
                let factor = lu[(i, k)] / lu[(k, k)];
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let v = lu[(k, j)];
                    lu[(i, j)] -= factor * v;
                }
            }
        }
        Ok(Lu { lu, piv })
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction but kept fallible for parity
    /// with the other solvers.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower).
        for i in 1..n {
            for j in 0..i {
                x[i] -= self.lu[(i, j)] * x[j];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for j in i + 1..n {
                x[i] -= self.lu[(i, j)] * x[j];
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }
}

/// Cholesky decomposition of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors `A = L·Lᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when the matrix is not positive
    /// definite.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(a: &Matrix) -> Result<Cholesky, SingularMatrixError> {
        assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(SingularMatrixError);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Infallible after construction; fallible signature kept for parity.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = b.to_vec();
        for i in 0..n {
            for j in 0..i {
                y[i] -= self.l[(i, j)] * y[j];
            }
            y[i] /= self.l[(i, i)];
        }
        for i in (0..n).rev() {
            for j in i + 1..n {
                y[i] -= self.l[(j, i)] * y[j];
            }
            y[i] /= self.l[(i, i)];
        }
        Ok(y)
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

/// Householder QR decomposition (for least squares).
#[derive(Debug, Clone)]
pub struct Qr {
    qr: Matrix,
    rdiag: Vec<f64>,
}

impl Qr {
    /// Factors an `m × n` matrix with `m ≥ n`.
    ///
    /// # Panics
    ///
    /// Panics if `rows < cols`.
    pub fn new(a: &Matrix) -> Qr {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QR needs rows >= cols");
        let mut qr = a.clone();
        let mut rdiag = vec![0.0; n];
        for k in 0..n {
            let mut nrm = 0.0f64;
            for i in k..m {
                nrm = nrm.hypot(qr[(i, k)]);
            }
            if nrm != 0.0 {
                if qr[(k, k)] < 0.0 {
                    nrm = -nrm;
                }
                for i in k..m {
                    qr[(i, k)] /= nrm;
                }
                qr[(k, k)] += 1.0;
                for j in k + 1..n {
                    let mut s = 0.0;
                    for i in k..m {
                        s += qr[(i, k)] * qr[(i, j)];
                    }
                    s = -s / qr[(k, k)];
                    for i in k..m {
                        let v = qr[(i, k)];
                        qr[(i, j)] += s * v;
                    }
                }
            }
            rdiag[k] = -nrm;
        }
        Qr { qr, rdiag }
    }

    /// Least-squares solve `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when the matrix is rank deficient.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the row count.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        assert_eq!(b.len(), m, "rhs length mismatch");
        if self.rdiag.iter().any(|d| d.abs() < 1e-12) {
            return Err(SingularMatrixError);
        }
        let mut y = b.to_vec();
        // Apply Householder reflections.
        for k in 0..n {
            let mut s = 0.0;
            for (i, yi) in y.iter().enumerate().take(m).skip(k) {
                s += self.qr[(i, k)] * yi;
            }
            s = -s / self.qr[(k, k)];
            for (i, yi) in y.iter_mut().enumerate().take(m).skip(k) {
                *yi += s * self.qr[(i, k)];
            }
        }
        // Back substitution on R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.qr[(i, j)] * xj;
            }
            x[i] = s / self.rdiag[i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn lu_solves_3x3() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
        let x = a.solve(&[5.0, -2.0, 9.0]).unwrap();
        assert_close(&a.matvec(&x), &[5.0, -2.0, 9.0], 1e-9);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]).unwrap_err(), SingularMatrixError);
    }

    #[test]
    fn cholesky_solves_spd() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&[1.0, 2.0]).unwrap();
        assert_close(&a.matvec(&x), &[1.0, 2.0], 1e-10);
        // L·Lᵀ reconstructs A.
        let l = ch.l();
        let rec = l.matmul(&l.transpose());
        assert!((rec.sub(&a)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn qr_least_squares() {
        // Overdetermined: fit y = 2x + 1 through noisy-free points.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]);
        let b = [3.0, 5.0, 7.0, 9.0];
        let x = Qr::new(&a).solve(&b).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-9);
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(Qr::new(&a).solve(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn random_spd_roundtrip() {
        // Deterministic pseudo-random SPD matrices.
        let mut seed = 42u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for n in [2usize, 4, 6] {
            let mut b = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    b[(i, j)] = rnd();
                }
            }
            let spd = b.transpose().matmul(&b).add(&Matrix::identity(n).scale(0.5));
            let rhs: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let x1 = Lu::new(&spd).unwrap().solve(&rhs).unwrap();
            let x2 = Cholesky::new(&spd).unwrap().solve(&rhs).unwrap();
            assert_close(&x1, &x2, 1e-8);
        }
    }
}
