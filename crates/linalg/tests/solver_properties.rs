//! Property tests: the decompositions satisfy their defining residual
//! identities on random well-conditioned systems.

use mlcomp_linalg::{svd, symmetric_eigen, Cholesky, Lu, Matrix, Qr};
use proptest::prelude::*;

fn random_matrix(n: usize, m: usize, vals: &[f64]) -> Matrix {
    let mut out = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            out[(i, j)] = vals[i * m + j];
        }
    }
    out
}

fn spd_from(b: &Matrix) -> Matrix {
    // BᵀB + I is symmetric positive definite.
    b.gram().add(&Matrix::identity(b.cols()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn lu_solves_spd(vals in prop::collection::vec(-3.0f64..3.0, 16), rhs in prop::collection::vec(-5.0f64..5.0, 4)) {
        let a = spd_from(&random_matrix(4, 4, &vals));
        let x = Lu::new(&a).unwrap().solve(&rhs).unwrap();
        let r = a.matvec(&x);
        for (got, want) in r.iter().zip(&rhs) {
            prop_assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn cholesky_agrees_with_lu(vals in prop::collection::vec(-3.0f64..3.0, 16), rhs in prop::collection::vec(-5.0f64..5.0, 4)) {
        let a = spd_from(&random_matrix(4, 4, &vals));
        let x1 = Lu::new(&a).unwrap().solve(&rhs).unwrap();
        let x2 = Cholesky::new(&a).unwrap().solve(&rhs).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn qr_residual_is_orthogonal_to_columns(
        vals in prop::collection::vec(-2.0f64..2.0, 18),
        rhs in prop::collection::vec(-5.0f64..5.0, 6),
    ) {
        // 6×3 overdetermined least squares: the residual must be orthogonal
        // to the column space (normal equations).
        let a = random_matrix(6, 3, &vals);
        // Guard against accidental rank deficiency.
        let g = a.gram();
        prop_assume!(Cholesky::new(&g.add(&Matrix::identity(3).scale(1e-9))).is_ok());
        let Ok(x) = Qr::new(&a).solve(&rhs) else {
            return Ok(()); // rank-deficient sample — allowed to refuse
        };
        let ax = a.matvec(&x);
        let resid: Vec<f64> = rhs.iter().zip(&ax).map(|(b, p)| b - p).collect();
        let at_r = a.transpose().matvec(&resid);
        for v in at_r {
            prop_assert!(v.abs() < 1e-6, "Aᵀr = {v}");
        }
    }

    #[test]
    fn eigen_reconstructs(vals in prop::collection::vec(-2.0f64..2.0, 16)) {
        let b = random_matrix(4, 4, &vals);
        let a = b.add(&b.transpose()).scale(0.5); // symmetrize
        let e = symmetric_eigen(&a);
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 {
            d[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        prop_assert!(rec.sub(&a).frobenius_norm() < 1e-7);
        // Ordered eigenvalues.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn svd_reconstructs(vals in prop::collection::vec(-2.0f64..2.0, 15)) {
        let a = random_matrix(5, 3, &vals);
        let s = svd(&a);
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = s.singular_values[i];
        }
        let rec = s.u.matmul(&d).matmul(&s.v.transpose());
        prop_assert!(rec.sub(&a).frobenius_norm() < 1e-6);
        prop_assert!(s.singular_values.iter().all(|&v| v >= 0.0));
    }
}
