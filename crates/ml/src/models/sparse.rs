//! Sparsity-inducing linear models: Lasso and ElasticNet (coordinate
//! descent), LARS and Lasso-LARS (least-angle steps), and orthogonal
//! matching pursuit.

use super::linear::ridge_solve;
use super::{center, check_xy, column_means, predict_linear};
use crate::{Regressor, TrainError};
use mlcomp_linalg::Matrix;
use serde::{Deserialize, Serialize};

fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

/// Shared coordinate-descent core for Lasso (`l2 = 0`) and ElasticNet.
fn coordinate_descent(
    xc: &Matrix,
    yc: &[f64],
    l1: f64,
    l2: f64,
    max_iter: usize,
) -> Vec<f64> {
    let (n, d) = (xc.rows(), xc.cols());
    let nf = n as f64;
    let col_sq: Vec<f64> = (0..d)
        .map(|j| xc.col(j).iter().map(|v| v * v).sum::<f64>() / nf)
        .collect();
    let mut w = vec![0.0; d];
    let mut resid: Vec<f64> = yc.to_vec();
    for _ in 0..max_iter {
        let mut max_delta = 0.0f64;
        for j in 0..d {
            if col_sq[j] < 1e-12 {
                continue;
            }
            // rho = (1/n) xⱼ · (resid + xⱼ wⱼ)
            let mut rho = 0.0;
            for i in 0..n {
                rho += xc[(i, j)] * resid[i];
            }
            rho = rho / nf + col_sq[j] * w[j];
            let new_wj = soft_threshold(rho, l1) / (col_sq[j] + l2);
            let delta = new_wj - w[j];
            if delta != 0.0 {
                for i in 0..n {
                    resid[i] -= delta * xc[(i, j)];
                }
                w[j] = new_wj;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < 1e-10 {
            break;
        }
    }
    w
}

/// Lasso (L1-penalized least squares) by cyclic coordinate descent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lasso {
    /// L1 penalty.
    pub alpha: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Lasso {
    /// Lasso with the given α.
    pub fn new(alpha: f64) -> Lasso {
        Lasso {
            alpha,
            max_iter: 300,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }

    /// Fitted coefficients (empty before fit).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }
}

impl Default for Lasso {
    fn default() -> Self {
        Lasso::new(0.1)
    }
}

impl Regressor for Lasso {
    fn name(&self) -> &'static str {
        "lasso"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        self.weights = coordinate_descent(&xc, &yc, self.alpha, 0.0, self.max_iter);
        self.intercept = ymean;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

/// Elastic net: mixed L1/L2 penalty by coordinate descent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticNet {
    /// Total penalty strength.
    pub alpha: f64,
    /// L1 share in `[0, 1]` (1 = lasso, 0 = ridge-like).
    pub l1_ratio: f64,
    /// Maximum sweeps.
    pub max_iter: usize,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Default for ElasticNet {
    fn default() -> Self {
        ElasticNet {
            alpha: 0.1,
            l1_ratio: 0.5,
            max_iter: 300,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }
}

impl ElasticNet {
    /// Elastic net with explicit penalty strength and L1 share.
    pub fn new(alpha: f64, l1_ratio: f64) -> ElasticNet {
        ElasticNet {
            alpha,
            l1_ratio,
            ..ElasticNet::default()
        }
    }
}

impl Regressor for ElasticNet {
    fn name(&self) -> &'static str {
        "elastic-net"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        let l1 = self.alpha * self.l1_ratio;
        let l2 = self.alpha * (1.0 - self.l1_ratio);
        self.weights = coordinate_descent(&xc, &yc, l1, l2, self.max_iter);
        self.intercept = ymean;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

/// Least-angle regression: forward selection where, at each step, the
/// active set is refit jointly and extended by the feature most correlated
/// with the residual, up to `n_nonzero`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lars {
    /// Maximum active features.
    pub n_nonzero: usize,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Default for Lars {
    fn default() -> Self {
        Lars {
            n_nonzero: usize::MAX,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }
}

/// Forward least-angle/stepwise core shared by LARS variants and OMP:
/// grows the active set by residual correlation; `stop_corr` ends the path
/// early (the Lasso-LARS criterion).
fn forward_select(
    xc: &Matrix,
    yc: &[f64],
    n_nonzero: usize,
    stop_corr: f64,
) -> Result<Vec<f64>, TrainError> {
    let (n, d) = (xc.rows(), xc.cols());
    let nf = n as f64;
    let mut active: Vec<usize> = Vec::new();
    let mut w = vec![0.0; d];
    let mut resid: Vec<f64> = yc.to_vec();
    let limit = n_nonzero.min(d).min(n.saturating_sub(1).max(1));
    while active.len() < limit {
        // Most-correlated inactive feature.
        let mut best = None;
        let mut best_corr = 0.0f64;
        for j in 0..d {
            if active.contains(&j) {
                continue;
            }
            let c: f64 =
                (0..n).map(|i| xc[(i, j)] * resid[i]).sum::<f64>() / nf;
            if c.abs() > best_corr {
                best_corr = c.abs();
                best = Some(j);
            }
        }
        let Some(j) = best else { break };
        if best_corr <= stop_corr {
            break;
        }
        active.push(j);
        // Joint refit on the active set (the least-squares direction all
        // LARS steps converge to).
        let xa = xc.select_columns(&active);
        let wa = ridge_solve(&xa, yc, 1e-10)?;
        for v in w.iter_mut() {
            *v = 0.0;
        }
        for (k, &aj) in active.iter().enumerate() {
            w[aj] = wa[k];
        }
        for i in 0..n {
            resid[i] = yc[i]
                - active
                    .iter()
                    .map(|&aj| xc[(i, aj)] * w[aj])
                    .sum::<f64>();
        }
    }
    Ok(w)
}

impl Regressor for Lars {
    fn name(&self) -> &'static str {
        "lars"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        self.weights = forward_select(&xc, &yc, self.n_nonzero, 0.0)?;
        self.intercept = ymean;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

/// Lasso solved along the LARS path: the forward path stops once the
/// residual correlation falls below `alpha` (the KKT stationarity point of
/// the L1 problem).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LassoLars {
    /// L1 penalty / path stopping threshold.
    pub alpha: f64,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Default for LassoLars {
    fn default() -> Self {
        LassoLars {
            alpha: 0.05,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }
}

impl Regressor for LassoLars {
    fn name(&self) -> &'static str {
        "lasso-lars"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        self.weights = forward_select(&xc, &yc, usize::MAX, self.alpha)?;
        self.intercept = ymean;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

/// Orthogonal matching pursuit: greedy selection with orthogonal refit, up
/// to a fixed number of nonzero coefficients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Omp {
    /// Number of nonzero coefficients to select.
    pub n_nonzero: usize,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Default for Omp {
    fn default() -> Self {
        Omp {
            n_nonzero: 8,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }
}

impl Regressor for Omp {
    fn name(&self) -> &'static str {
        "omp"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        self.weights = forward_select(&xc, &yc, self.n_nonzero, 1e-12)?;
        self.intercept = ymean;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_learns, synthetic};
    use super::*;

    #[test]
    fn all_learn() {
        assert_learns(&mut Lasso::new(0.01), 0.97);
        assert_learns(&mut ElasticNet::default(), 0.90);
        assert_learns(&mut Lars::default(), 0.98);
        assert_learns(&mut LassoLars::default(), 0.95);
        assert_learns(&mut Omp::default(), 0.98);
    }

    #[test]
    fn lasso_sparsifies() {
        let (x, y) = synthetic(100, 0.01, 7);
        let mut weak = Lasso::new(0.001);
        let mut strong = Lasso::new(2.0);
        weak.fit(&x, &y).unwrap();
        strong.fit(&x, &y).unwrap();
        let nz_weak = weak.coefficients().iter().filter(|w| w.abs() > 1e-9).count();
        let nz_strong = strong
            .coefficients()
            .iter()
            .filter(|w| w.abs() > 1e-9)
            .count();
        assert!(nz_strong <= nz_weak, "{nz_strong} vs {nz_weak}");
        // The irrelevant feature is zeroed, the real ones shrink.
        assert!(strong.coefficients()[2].abs() < 1e-9);
        assert!(strong.coefficients()[0].abs() < weak.coefficients()[0].abs());
    }

    #[test]
    fn omp_respects_sparsity_budget() {
        let (x, y) = synthetic(100, 0.01, 7);
        let mut m = Omp {
            n_nonzero: 1,
            ..Omp::default()
        };
        m.fit(&x, &y).unwrap();
        let nz = m.weights.iter().filter(|w| w.abs() > 1e-9).count();
        assert_eq!(nz, 1);
        // The strongest true feature (x₀, weight 3) is selected.
        assert!(m.weights[0].abs() > 1.0);
    }

    #[test]
    fn soft_threshold_props() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }
}
