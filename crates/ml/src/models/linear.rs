//! Plain linear models: ordinary least squares, ridge, SGD and
//! passive-aggressive regression.

use super::{center, check_xy, column_means, predict_linear};
use crate::{Regressor, TrainError};
use mlcomp_linalg::{Matrix, Qr};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Ordinary least squares via Householder QR; falls back to a tiny ridge
/// when the design is rank deficient.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Linear {
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Regressor for Linear {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        self.weights = if xc.rows() >= xc.cols() {
            match Qr::new(&xc).solve(&yc) {
                Ok(w) => w,
                Err(_) => ridge_solve(&xc, &yc, 1e-8)?,
            }
        } else {
            ridge_solve(&xc, &yc, 1e-8)?
        };
        self.intercept = ymean;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

/// Ridge regression: closed-form `(XᵀX + αI)⁻¹ Xᵀy` on centered data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ridge {
    /// L2 regularization strength.
    pub alpha: f64,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Ridge {
    /// Ridge with the given α.
    pub fn new(alpha: f64) -> Ridge {
        Ridge {
            alpha,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }
}

impl Default for Ridge {
    fn default() -> Self {
        Ridge::new(1.0)
    }
}

pub(crate) fn ridge_solve(xc: &Matrix, yc: &[f64], alpha: f64) -> Result<Vec<f64>, TrainError> {
    let d = xc.cols();
    let mut gram = xc.gram();
    for i in 0..d {
        gram[(i, i)] += alpha.max(1e-12);
    }
    let xty = xc.transpose().matvec(yc);
    gram.solve(&xty)
        .map_err(|e| TrainError::new(format!("ridge system: {e}")))
}

impl Regressor for Ridge {
    fn name(&self) -> &'static str {
        "ridge"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        self.weights = ridge_solve(&xc, &yc, self.alpha)?;
        self.intercept = ymean;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

/// Linear regression by stochastic gradient descent (squared loss, L2
/// penalty, inverse-scaling learning rate, seeded shuffling).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// L2 penalty.
    pub alpha: f64,
    /// Initial learning rate.
    pub eta0: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd {
            alpha: 1e-4,
            eta0: 0.05,
            epochs: 60,
            seed: 1,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
            scales: Vec::new(),
        }
    }
}

impl Regressor for Sgd {
    fn name(&self) -> &'static str {
        "sgd"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        // SGD needs standardized features to converge.
        self.means = column_means(x);
        self.scales = (0..x.cols())
            .map(|j| {
                let s = mlcomp_linalg::std_dev(&x.col(j));
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        let n = x.rows();
        let d = x.cols();
        let mut w = vec![0.0; d];
        let mut b = mlcomp_linalg::mean(y);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut t = 0.0f64;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1.0;
                let eta = self.eta0 / (1.0 + self.eta0 * self.alpha * t).sqrt();
                let xi: Vec<f64> = (0..d)
                    .map(|j| (x[(i, j)] - self.means[j]) / self.scales[j])
                    .collect();
                let pred: f64 = b + xi.iter().zip(&w).map(|(a, c)| a * c).sum::<f64>();
                let err = pred - y[i];
                for j in 0..d {
                    w[j] -= eta * (err * xi[j] + self.alpha * w[j]);
                }
                b -= eta * err;
            }
        }
        // Fold the standardization into the stored weights.
        self.weights = w.iter().zip(&self.scales).map(|(wj, s)| wj / s).collect();
        self.intercept = b;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

/// Passive-aggressive regression (PA-II): per-sample updates sized by the
/// ε-insensitive hinge loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PassiveAggressive {
    /// Aggressiveness (PA-II regularization).
    pub c: f64,
    /// Insensitivity band.
    pub epsilon: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl Default for PassiveAggressive {
    fn default() -> Self {
        PassiveAggressive {
            c: 1.0,
            epsilon: 0.01,
            epochs: 40,
            seed: 2,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
            scales: Vec::new(),
        }
    }
}

impl Regressor for PassiveAggressive {
    fn name(&self) -> &'static str {
        "passive-aggressive"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        self.scales = (0..x.cols())
            .map(|j| {
                let s = mlcomp_linalg::std_dev(&x.col(j));
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        let (n, d) = (x.rows(), x.cols());
        let mut w = vec![0.0; d];
        let mut b = mlcomp_linalg::mean(y);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        // Scale the insensitivity band to the target spread.
        let eps = self.epsilon * mlcomp_linalg::std_dev(y).max(1e-9);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let xi: Vec<f64> = (0..d)
                    .map(|j| (x[(i, j)] - self.means[j]) / self.scales[j])
                    .collect();
                let pred: f64 = b + xi.iter().zip(&w).map(|(a, c)| a * c).sum::<f64>();
                let err = pred - y[i];
                let loss = (err.abs() - eps).max(0.0);
                if loss > 0.0 {
                    let norm2: f64 = xi.iter().map(|v| v * v).sum::<f64>() + 1.0;
                    let tau = loss / (norm2 + 0.5 / self.c);
                    let sign = err.signum();
                    for j in 0..d {
                        w[j] -= tau * sign * xi[j];
                    }
                    b -= tau * sign;
                }
            }
        }
        self.weights = w.iter().zip(&self.scales).map(|(wj, s)| wj / s).collect();
        self.intercept = b;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_learns, synthetic};
    use super::*;

    #[test]
    fn linear_recovers_exact_coefficients() {
        let (x, y) = synthetic(60, 0.0, 5);
        let mut m = Linear::default();
        m.fit(&x, &y).unwrap();
        assert!((m.weights[0] - 3.0).abs() < 1e-8);
        assert!((m.weights[1] + 2.0).abs() < 1e-8);
        assert!(m.weights[2].abs() < 1e-8);
    }

    #[test]
    fn ridge_shrinks_with_alpha() {
        let (x, y) = synthetic(60, 0.0, 5);
        let mut weak = Ridge::new(1e-6);
        let mut strong = Ridge::new(1e4);
        weak.fit(&x, &y).unwrap();
        strong.fit(&x, &y).unwrap();
        let nw: f64 = weak.weights.iter().map(|w| w * w).sum();
        let ns: f64 = strong.weights.iter().map(|w| w * w).sum();
        assert!(ns < nw / 10.0, "strong ridge must shrink: {ns} vs {nw}");
    }

    #[test]
    fn all_learn_the_synthetic_task() {
        assert_learns(&mut Linear::default(), 0.99);
        assert_learns(&mut Ridge::new(0.1), 0.98);
        assert_learns(&mut Sgd::default(), 0.95);
        assert_learns(&mut PassiveAggressive::default(), 0.95);
    }

    #[test]
    fn fit_errors_on_bad_input() {
        let x = Matrix::zeros(0, 2);
        assert!(Linear::default().fit(&x, &[]).is_err());
        let x = Matrix::from_rows(&[&[1.0]]);
        assert!(Ridge::default().fit(&x, &[1.0, 2.0]).is_err());
        assert!(Sgd::default().fit(&x, &[f64::NAN]).is_err());
    }

    #[test]
    fn sgd_is_seeded() {
        let (x, y) = synthetic(50, 0.1, 9);
        let mut a = Sgd::default();
        let mut b = Sgd::default();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
