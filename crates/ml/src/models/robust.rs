//! Outlier-robust models: Huber (IRLS) and Theil–Sen (subsample medians).

use super::linear::ridge_solve;
use super::{center, check_xy, column_means, predict_linear};
use crate::{Regressor, TrainError};
use mlcomp_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Huber regression by iteratively reweighted least squares: quadratic
/// loss near zero, linear beyond `delta` (in units of the residual MAD).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Huber {
    /// Transition point between quadratic and linear loss, in robust
    /// standard deviations.
    pub delta: f64,
    /// IRLS iterations.
    pub max_iter: usize,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Default for Huber {
    fn default() -> Self {
        Huber {
            delta: 1.35,
            max_iter: 20,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }
}

impl Regressor for Huber {
    fn name(&self) -> &'static str {
        "huber"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        let (n, d) = (xc.rows(), xc.cols());
        let mut w = ridge_solve(&xc, &yc, 1e-8)?;
        let mut b = 0.0f64;
        for _ in 0..self.max_iter {
            let resid: Vec<f64> = (0..n)
                .map(|i| {
                    yc[i]
                        - b
                        - (0..d).map(|j| xc[(i, j)] * w[j]).sum::<f64>()
                })
                .collect();
            // Robust scale: median absolute deviation.
            let abs: Vec<f64> = resid.iter().map(|r| r.abs()).collect();
            let mad = mlcomp_linalg::median(&abs).max(1e-9) * 1.4826;
            let cutoff = self.delta * mad;
            let sample_w: Vec<f64> = resid
                .iter()
                .map(|r| {
                    if r.abs() <= cutoff {
                        1.0
                    } else {
                        cutoff / r.abs()
                    }
                })
                .collect();
            // Weighted ridge solve.
            let mut xw = Matrix::zeros(n, d);
            let mut yw = vec![0.0; n];
            for i in 0..n {
                let s = sample_w[i].sqrt();
                for j in 0..d {
                    xw[(i, j)] = xc[(i, j)] * s;
                }
                yw[i] = (yc[i] - b) * s;
            }
            let new_w = ridge_solve(&xw, &yw, 1e-8)?;
            // Intercept from weighted residual mean.
            let wsum: f64 = sample_w.iter().sum();
            let new_b = (0..n)
                .map(|i| {
                    sample_w[i]
                        * (yc[i] - (0..d).map(|j| xc[(i, j)] * new_w[j]).sum::<f64>())
                })
                .sum::<f64>()
                / wsum.max(1e-12);
            let delta_w: f64 = new_w
                .iter()
                .zip(&w)
                .map(|(a, c)| (a - c).abs())
                .fold(0.0, f64::max);
            w = new_w;
            b = new_b;
            if delta_w < 1e-10 {
                break;
            }
        }
        self.weights = w;
        self.intercept = ymean + b;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

/// Theil–Sen estimator generalized to multiple features: ordinary least
/// squares on many small random subsamples, combined by the coordinate-wise
/// median of the coefficient vectors (the classic spatial-median
/// approximation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheilSen {
    /// Number of random subsamples.
    pub n_subsamples: usize,
    /// Random seed.
    pub seed: u64,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Default for TheilSen {
    fn default() -> Self {
        TheilSen {
            n_subsamples: 60,
            seed: 5,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }
}

impl Regressor for TheilSen {
    fn name(&self) -> &'static str {
        "theil-sen"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        let (n, d) = (xc.rows(), xc.cols());
        let k = (2 * d + 2).min(n);
        if k < d + 1 {
            return Err(TrainError::new("too few rows for Theil-Sen subsamples"));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut idx: Vec<usize> = (0..n).collect();
        let mut coef_samples: Vec<Vec<f64>> = Vec::new();
        for _ in 0..self.n_subsamples {
            idx.shuffle(&mut rng);
            let rows = &idx[..k];
            let mut xs = Matrix::zeros(k, d);
            let mut ys = vec![0.0; k];
            for (ni, &ri) in rows.iter().enumerate() {
                xs.row_mut(ni).copy_from_slice(xc.row(ri));
                ys[ni] = yc[ri];
            }
            if let Ok(w) = ridge_solve(&xs, &ys, 1e-8) {
                if w.iter().all(|v| v.is_finite()) {
                    coef_samples.push(w);
                }
            }
        }
        if coef_samples.is_empty() {
            return Err(TrainError::new("no solvable Theil-Sen subsample"));
        }
        self.weights = (0..d)
            .map(|j| {
                let col: Vec<f64> = coef_samples.iter().map(|w| w[j]).collect();
                mlcomp_linalg::median(&col)
            })
            .collect();
        // Robust intercept: median residual (an outlier-shifted mean would
        // defeat the whole point of Theil–Sen).
        let resid: Vec<f64> = (0..n)
            .map(|i| y[i] - (0..d).map(|j| xc[(i, j)] * self.weights[j]).sum::<f64>())
            .collect();
        self.intercept = mlcomp_linalg::median(&resid);
        let _ = ymean;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_learns, synthetic};
    use super::*;

    #[test]
    fn both_learn() {
        assert_learns(&mut Huber::default(), 0.97);
        assert_learns(&mut TheilSen::default(), 0.95);
    }

    #[test]
    fn robust_to_outliers() {
        let (x, mut y) = synthetic(120, 0.05, 21);
        // Corrupt 10% of the targets badly.
        for i in (0..y.len()).step_by(10) {
            y[i] += 500.0;
        }
        let mut ols = super::super::linear::Linear::default();
        let mut hub = Huber::default();
        let mut ts = TheilSen::default();
        ols.fit(&x, &y).unwrap();
        hub.fit(&x, &y).unwrap();
        ts.fit(&x, &y).unwrap();
        // Evaluate against CLEAN targets.
        let (xc, yc) = synthetic(120, 0.0, 99);
        let e_ols = crate::metrics::rmse(&yc, &ols.predict(&xc));
        let e_hub = crate::metrics::rmse(&yc, &hub.predict(&xc));
        let e_ts = crate::metrics::rmse(&yc, &ts.predict(&xc));
        assert!(e_hub < e_ols, "huber {e_hub} should beat ols {e_ols}");
        assert!(e_ts < e_ols, "theil-sen {e_ts} should beat ols {e_ols}");
    }
}
