//! Kernel and support-vector models: RBF kernel ridge, ε-SVR and ν-SVR
//! (primal subgradient on random Fourier features — see DESIGN.md §2 for
//! the substitution of libsvm's SMO), and linear SVR.

use super::{check_xy, column_means};
use crate::{Regressor, TrainError};
use mlcomp_linalg::Matrix;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// RBF kernel ridge regression: `(K + αI)⁻¹ y` with
/// `K(a,b) = exp(−γ‖a−b‖²)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelRidge {
    /// Regularization.
    pub alpha: f64,
    /// RBF width (`None` = 1/(d·var) heuristic).
    pub gamma: Option<f64>,
    train_x: Option<Matrix>,
    dual: Vec<f64>,
    gamma_fitted: f64,
    y_mean: f64,
}

impl Default for KernelRidge {
    fn default() -> Self {
        KernelRidge {
            alpha: 0.1,
            gamma: None,
            train_x: None,
            dual: Vec::new(),
            gamma_fitted: 1.0,
            y_mean: 0.0,
        }
    }
}

impl KernelRidge {
    /// Kernel ridge with explicit regularization and optional RBF width.
    pub fn new(alpha: f64, gamma: Option<f64>) -> KernelRidge {
        KernelRidge {
            alpha,
            gamma,
            ..KernelRidge::default()
        }
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

fn gamma_heuristic(x: &Matrix) -> f64 {
    let d = x.cols() as f64;
    let total_var: f64 = (0..x.cols())
        .map(|j| mlcomp_linalg::variance(&x.col(j)))
        .sum();
    1.0 / (d * (total_var / d.max(1.0)).max(1e-9)).max(1e-9)
}

impl Regressor for KernelRidge {
    fn name(&self) -> &'static str {
        "kernel-ridge"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        let n = x.rows();
        self.gamma_fitted = self.gamma.unwrap_or_else(|| gamma_heuristic(x));
        self.y_mean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - self.y_mean).collect();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = rbf(x.row(i), x.row(j), self.gamma_fitted);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += self.alpha.max(1e-10);
        }
        self.dual = k
            .solve(&yc)
            .map_err(|e| TrainError::new(format!("kernel system: {e}")))?;
        self.train_x = Some(x.clone());
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let tx = self.train_x.as_ref().expect("predict before fit");
        (0..x.rows())
            .map(|i| {
                self.y_mean
                    + (0..tx.rows())
                        .map(|t| self.dual[t] * rbf(x.row(i), tx.row(t), self.gamma_fitted))
                        .sum::<f64>()
            })
            .collect()
    }
}

/// Shared primal ε-insensitive subgradient trainer over an arbitrary
/// feature map (identity for linear SVR, random Fourier features for the
/// RBF machines).
fn svr_train(
    feats: &Matrix,
    y: &[f64],
    c: f64,
    epsilon: f64,
    epochs: usize,
    seed: u64,
) -> (Vec<f64>, f64) {
    use rand::seq::SliceRandom;
    let (n, d) = (feats.rows(), feats.cols());
    let mut w = vec![0.0; d];
    let mut b = mlcomp_linalg::mean(y);
    let lambda = 1.0 / (c * n as f64);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        for &i in &order {
            t += 1.0;
            let eta = 1.0 / (lambda * (t + 100.0));
            let pred: f64 = b
                + feats
                    .row(i)
                    .iter()
                    .zip(&w)
                    .map(|(a, c)| a * c)
                    .sum::<f64>();
            let err = pred - y[i];
            // Subgradient of the ε-insensitive loss.
            let g = if err > epsilon {
                1.0
            } else if err < -epsilon {
                -1.0
            } else {
                0.0
            };
            for j in 0..d {
                w[j] -= eta * (lambda * w[j] + g * feats[(i, j)]);
            }
            b -= eta * g;
        }
    }
    (w, b)
}

/// Random Fourier feature map approximating the RBF kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FourierMap {
    proj: Matrix, // d × k
    phase: Vec<f64>,
    scale: f64,
}

impl FourierMap {
    fn new(dim: usize, k: usize, gamma: f64, seed: u64) -> FourierMap {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut proj = Matrix::zeros(dim, k);
        let sigma = (2.0 * gamma).sqrt();
        for i in 0..dim {
            for j in 0..k {
                // Gaussian via Box–Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                proj[(i, j)] = g * sigma;
            }
        }
        let phase: Vec<f64> = (0..k)
            .map(|_| rng.gen_range(0.0..2.0 * std::f64::consts::PI))
            .collect();
        FourierMap {
            proj,
            phase,
            scale: (2.0 / k as f64).sqrt(),
        }
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let z = x.matmul(&self.proj);
        let mut out = Matrix::zeros(z.rows(), z.cols());
        for i in 0..z.rows() {
            for j in 0..z.cols() {
                out[(i, j)] = self.scale * (z[(i, j)] + self.phase[j]).cos();
            }
        }
        out
    }
}

/// ε-SVR with an RBF kernel, trained in the primal over random Fourier
/// features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Svr {
    /// Penalty parameter C.
    pub c: f64,
    /// Insensitivity band as a fraction of the target spread.
    pub epsilon: f64,
    /// RBF width (`None` = heuristic).
    pub gamma: Option<f64>,
    /// Number of Fourier features.
    pub n_features: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Seed for features and shuffling.
    pub seed: u64,
    map: Option<FourierMap>,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Default for Svr {
    fn default() -> Self {
        Svr {
            c: 10.0,
            epsilon: 0.02,
            gamma: None,
            n_features: 200,
            epochs: 80,
            seed: 4,
            map: None,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }
}

impl Svr {
    /// SVR with explicit penalty and tube width.
    pub fn new(c: f64, epsilon: f64) -> Svr {
        Svr {
            c,
            epsilon,
            ..Svr::default()
        }
    }
}

impl Svr {
    fn fit_with_epsilon(&mut self, x: &Matrix, y: &[f64], eps_abs: f64) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = super::center(x, &self.means);
        let gamma = self.gamma.unwrap_or_else(|| gamma_heuristic(&xc));
        let map = FourierMap::new(xc.cols(), self.n_features, gamma, self.seed);
        let feats = map.transform(&xc);
        let (w, b) = svr_train(&feats, y, self.c, eps_abs, self.epochs, self.seed ^ 0xABCD);
        self.map = Some(map);
        self.weights = w;
        self.intercept = b;
        Ok(())
    }
}

impl Regressor for Svr {
    fn name(&self) -> &'static str {
        "svr"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        let eps = self.epsilon * mlcomp_linalg::std_dev(y).max(1e-9);
        self.fit_with_epsilon(x, y, eps)
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let map = self.map.as_ref().expect("predict before fit");
        let xc = super::center(x, &self.means);
        let feats = map.transform(&xc);
        (0..feats.rows())
            .map(|i| {
                self.intercept
                    + feats
                        .row(i)
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, c)| a * c)
                        .sum::<f64>()
            })
            .collect()
    }
}

/// ν-SVR: the ν parameter sets the fraction of points allowed outside the
/// tube; realized here by choosing ε as the ν-quantile of the residual
/// magnitudes of a pilot fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NuSvr {
    /// Tube-violation fraction ν in `(0, 1)`.
    pub nu: f64,
    /// Underlying SVR configuration.
    pub base: Svr,
}

impl Default for NuSvr {
    fn default() -> Self {
        NuSvr {
            nu: 0.5,
            base: Svr {
                seed: 14,
                ..Svr::default()
            },
        }
    }
}

impl Regressor for NuSvr {
    fn name(&self) -> &'static str {
        "nu-svr"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        // Pilot fit with a wide tube, then set ε from residual quantiles.
        let pilot_eps = mlcomp_linalg::std_dev(y).max(1e-9) * 0.1;
        self.base.fit_with_epsilon(x, y, pilot_eps)?;
        let resid: Vec<f64> = self
            .base
            .predict(x)
            .iter()
            .zip(y)
            .map(|(p, t)| (p - t).abs())
            .collect();
        let eps = mlcomp_linalg::percentile(&resid, (1.0 - self.nu).clamp(0.0, 1.0) * 100.0);
        self.base.fit_with_epsilon(x, y, eps.max(1e-12))
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.base.predict(x)
    }
}

/// Linear ε-SVR trained in the primal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvr {
    /// Penalty parameter C.
    pub c: f64,
    /// Insensitivity band as a fraction of the target spread.
    pub epsilon: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl Default for LinearSvr {
    fn default() -> Self {
        LinearSvr {
            c: 10.0,
            epsilon: 0.02,
            epochs: 120,
            seed: 6,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
            scales: Vec::new(),
        }
    }
}

impl Regressor for LinearSvr {
    fn name(&self) -> &'static str {
        "linear-svr"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        self.scales = (0..x.cols())
            .map(|j| {
                let s = mlcomp_linalg::std_dev(&x.col(j));
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        let mut std = Matrix::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                std[(i, j)] = (x[(i, j)] - self.means[j]) / self.scales[j];
            }
        }
        let eps = self.epsilon * mlcomp_linalg::std_dev(y).max(1e-9);
        let (w, b) = svr_train(&std, y, self.c, eps, self.epochs, self.seed);
        self.weights = w.iter().zip(&self.scales).map(|(wj, s)| wj / s).collect();
        self.intercept = b;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        super::predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_learns, synthetic};
    use super::*;

    #[test]
    fn kernel_ridge_fits_nonlinear_target() {
        // y = sin(x) — impossible for a linear model.
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0].sin()).collect();
        let x = Matrix::from_vec_rows(rows);
        let mut m = KernelRidge {
            alpha: 1e-4,
            ..KernelRidge::default()
        };
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x);
        assert!(crate::metrics::r2(&y, &pred) > 0.99);
    }

    #[test]
    fn svms_learn_linear_task() {
        assert_learns(&mut KernelRidge::default(), 0.85);
        assert_learns(&mut Svr::default(), 0.85);
        assert_learns(&mut NuSvr::default(), 0.85);
        assert_learns(&mut LinearSvr::default(), 0.95);
    }

    #[test]
    fn svr_is_seeded() {
        let (x, y) = synthetic(60, 0.1, 13);
        let mut a = Svr::default();
        let mut b = Svr::default();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn rbf_kernel_props() {
        let a = [1.0, 2.0];
        assert_eq!(rbf(&a, &a, 0.5), 1.0);
        assert!(rbf(&a, &[100.0, 100.0], 0.5) < 1e-10);
    }
}
