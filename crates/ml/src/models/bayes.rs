//! Bayesian linear models: Bayesian ridge and ARD (automatic relevance
//! determination), both by evidence-approximation iterations.

use super::{center, check_xy, column_means, predict_linear};
use crate::{Regressor, TrainError};
use mlcomp_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Bayesian ridge regression: iteratively re-estimates the noise precision
/// `alpha` and weight precision `lambda` (MacKay's evidence updates).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BayesianRidge {
    /// Maximum evidence iterations.
    pub max_iter: usize,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
    /// Final noise precision (exposed for inspection).
    pub alpha_: f64,
    /// Final weight precision.
    pub lambda_: f64,
}

impl Default for BayesianRidge {
    fn default() -> Self {
        BayesianRidge {
            max_iter: 30,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
            alpha_: 1.0,
            lambda_: 1.0,
        }
    }
}

impl Regressor for BayesianRidge {
    fn name(&self) -> &'static str {
        "bayesian-ridge"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        let (n, d) = (xc.rows(), xc.cols());
        let gram = xc.gram();
        let xty = xc.transpose().matvec(&yc);
        let mut alpha = 1.0 / mlcomp_linalg::variance(&yc).max(1e-9);
        let mut lambda = 1.0;
        let mut w = vec![0.0; d];
        for _ in 0..self.max_iter {
            // Posterior mean: (αXᵀX + λI)⁻¹ αXᵀy.
            let mut a = gram.scale(alpha);
            for i in 0..d {
                a[(i, i)] += lambda;
            }
            let rhs: Vec<f64> = xty.iter().map(|v| v * alpha).collect();
            w = a
                .solve(&rhs)
                .map_err(|e| TrainError::new(format!("posterior system: {e}")))?;
            // Effective parameters γ = Σ α·s_i / (λ + α·s_i) — approximated
            // through tr(A⁻¹·αXᵀX) via the diagonal.
            let pred = xc.matvec(&w);
            let sse: f64 = yc
                .iter()
                .zip(&pred)
                .map(|(t, p)| (t - p) * (t - p))
                .sum();
            let wsq: f64 = w.iter().map(|v| v * v).sum();
            let gamma = d as f64 * alpha * sse.max(1e-12)
                / (alpha * sse.max(1e-12) + lambda * wsq.max(1e-12));
            let gamma = gamma.clamp(1e-6, d as f64);
            let new_lambda = gamma / wsq.max(1e-12);
            let new_alpha = (n as f64 - gamma).max(1e-6) / sse.max(1e-12);
            let converged =
                (new_lambda - lambda).abs() < 1e-9 && (new_alpha - alpha).abs() < 1e-9;
            lambda = new_lambda.clamp(1e-10, 1e10);
            alpha = new_alpha.clamp(1e-10, 1e10);
            if converged {
                break;
            }
        }
        self.weights = w;
        self.intercept = ymean;
        self.alpha_ = alpha;
        self.lambda_ = lambda;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

/// Automatic relevance determination: per-feature precision `λⱼ`; features
/// whose precision blows up are pruned to zero — Bayesian feature
/// selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ard {
    /// Maximum evidence iterations.
    pub max_iter: usize,
    /// Precision threshold above which a feature is pruned.
    pub prune_threshold: f64,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
}

impl Default for Ard {
    fn default() -> Self {
        Ard {
            max_iter: 30,
            prune_threshold: 1e8,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
        }
    }
}

impl Regressor for Ard {
    fn name(&self) -> &'static str {
        "ard"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        self.means = column_means(x);
        let xc = center(x, &self.means);
        let ymean = mlcomp_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - ymean).collect();
        let (n, d) = (xc.rows(), xc.cols());
        let gram = xc.gram();
        let xty = xc.transpose().matvec(&yc);
        let mut alpha = 1.0 / mlcomp_linalg::variance(&yc).max(1e-9);
        let mut lambdas = vec![1.0f64; d];
        let mut w = vec![0.0; d];
        for _ in 0..self.max_iter {
            let mut a = gram.scale(alpha);
            for i in 0..d {
                a[(i, i)] += lambdas[i];
            }
            let rhs: Vec<f64> = xty.iter().map(|v| v * alpha).collect();
            w = a
                .solve(&rhs)
                .map_err(|e| TrainError::new(format!("posterior system: {e}")))?;
            // Per-weight precision update λⱼ = 1 / wⱼ² (MacKay fixed point
            // with γⱼ ≈ 1 for active features).
            for j in 0..d {
                lambdas[j] = (1.0 / (w[j] * w[j]).max(1e-12)).min(self.prune_threshold * 10.0);
            }
            let pred = xc.matvec(&w);
            let sse: f64 = yc
                .iter()
                .zip(&pred)
                .map(|(t, p)| (t - p) * (t - p))
                .sum();
            alpha = (n as f64).max(1.0) / sse.max(1e-12);
            alpha = alpha.clamp(1e-10, 1e12);
        }
        for j in 0..d {
            if lambdas[j] >= self.prune_threshold {
                w[j] = 0.0;
            }
        }
        self.weights = w;
        self.intercept = ymean;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        predict_linear(x, &self.means, &self.weights, self.intercept)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_learns, synthetic};
    use super::*;

    #[test]
    fn both_learn() {
        assert_learns(&mut BayesianRidge::default(), 0.97);
        assert_learns(&mut Ard::default(), 0.97);
    }

    #[test]
    fn ard_prunes_irrelevant_feature() {
        let (x, y) = synthetic(150, 0.01, 3);
        let mut m = Ard::default();
        m.fit(&x, &y).unwrap();
        // Feature 2 is pure noise with tiny weight; features 0/1 are real.
        assert!(m.weights[0].abs() > 1.0);
        assert!(m.weights[1].abs() > 1.0);
        assert!(
            m.weights[2].abs() < 0.2,
            "noise weight should be (near-)pruned: {}",
            m.weights[2]
        );
    }

    #[test]
    fn bayesian_ridge_estimates_noise() {
        let (x, y) = synthetic(100, 0.0, 3);
        let mut clean = BayesianRidge::default();
        clean.fit(&x, &y).unwrap();
        let (xn, yn) = synthetic(100, 2.0, 3);
        let mut noisy = BayesianRidge::default();
        noisy.fit(&xn, &yn).unwrap();
        assert!(
            clean.alpha_ > noisy.alpha_,
            "noise precision must drop with noisy targets ({} vs {})",
            clean.alpha_,
            noisy.alpha_
        );
    }
}
