//! Tree models: CART regression tree (variance-reduction splits), extra
//! tree (random thresholds) and random forest (bagged CARTs with feature
//! subsampling).

use super::check_xy;
use crate::{Regressor, TrainError};
use mlcomp_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            Node::Leaf(v) => *v,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TreeCfg {
    max_depth: usize,
    min_samples_split: usize,
    random_thresholds: bool,
    feature_subsample: bool,
}

fn sse(ys: &[f64]) -> f64 {
    if ys.is_empty() {
        return 0.0;
    }
    let m = mlcomp_linalg::mean(ys);
    ys.iter().map(|y| (y - m) * (y - m)).sum()
}

fn build(
    x: &Matrix,
    y: &[f64],
    rows: &[usize],
    depth: usize,
    cfg: TreeCfg,
    rng: &mut rand::rngs::StdRng,
) -> Node {
    let ys: Vec<f64> = rows.iter().map(|&r| y[r]).collect();
    let node_value = mlcomp_linalg::mean(&ys);
    if depth >= cfg.max_depth || rows.len() < cfg.min_samples_split || sse(&ys) < 1e-12 {
        return Node::Leaf(node_value);
    }
    let d = x.cols();
    // Candidate features.
    let mut feats: Vec<usize> = (0..d).collect();
    if cfg.feature_subsample && d > 2 {
        feats.shuffle(rng);
        let k = ((d as f64).sqrt().ceil() as usize).max(1);
        feats.truncate(k);
    }
    let parent_sse = sse(&ys);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for &f in &feats {
        let mut vals: Vec<f64> = rows.iter().map(|&r| x[(r, f)]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        let thresholds: Vec<f64> = if cfg.random_thresholds {
            let lo = vals[0];
            let hi = vals[vals.len() - 1];
            vec![rng.gen_range(lo..hi)]
        } else {
            vals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
        };
        for t in thresholds {
            let (mut ly, mut ry) = (Vec::new(), Vec::new());
            for &r in rows {
                if x[(r, f)] <= t {
                    ly.push(y[r]);
                } else {
                    ry.push(y[r]);
                }
            }
            if ly.is_empty() || ry.is_empty() {
                continue;
            }
            let gain = parent_sse - sse(&ly) - sse(&ry);
            if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 1e-12) {
                best = Some((f, t, gain));
            }
        }
    }
    let Some((f, t, _)) = best else {
        return Node::Leaf(node_value);
    };
    let (mut lrows, mut rrows) = (Vec::new(), Vec::new());
    for &r in rows {
        if x[(r, f)] <= t {
            lrows.push(r);
        } else {
            rrows.push(r);
        }
    }
    Node::Split {
        feature: f,
        threshold: t,
        left: Box::new(build(x, y, &lrows, depth + 1, cfg, rng)),
        right: Box::new(build(x, y, &rrows, depth + 1, cfg, rng)),
    }
}

/// CART regression tree with variance-reduction splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    root: Option<Node>,
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree {
            max_depth: 8,
            min_samples_split: 4,
            root: None,
        }
    }
}

impl DecisionTree {
    /// Tree with an explicit depth cap.
    pub fn with_depth(max_depth: usize) -> DecisionTree {
        DecisionTree {
            max_depth,
            ..DecisionTree::default()
        }
    }
}

impl DecisionTree {
    /// Depth of the fitted tree (0 before fitting).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map(Node::depth).unwrap_or(0)
    }
}

impl Regressor for DecisionTree {
    fn name(&self) -> &'static str {
        "decision-tree"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        let rows: Vec<usize> = (0..x.rows()).collect();
        let cfg = TreeCfg {
            max_depth: self.max_depth,
            min_samples_split: self.min_samples_split,
            random_thresholds: false,
            feature_subsample: false,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        self.root = Some(build(x, y, &rows, 0, cfg, &mut rng));
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let root = self.root.as_ref().expect("predict before fit");
        (0..x.rows()).map(|i| root.predict(x.row(i))).collect()
    }
}

/// Extremely randomized tree: split thresholds drawn uniformly at random
/// (one per candidate feature).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtraTree {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Threshold-sampling seed.
    pub seed: u64,
    root: Option<Node>,
}

impl Default for ExtraTree {
    fn default() -> Self {
        ExtraTree {
            max_depth: 10,
            min_samples_split: 4,
            seed: 17,
            root: None,
        }
    }
}

impl Regressor for ExtraTree {
    fn name(&self) -> &'static str {
        "extra-tree"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        let rows: Vec<usize> = (0..x.rows()).collect();
        let cfg = TreeCfg {
            max_depth: self.max_depth,
            min_samples_split: self.min_samples_split,
            random_thresholds: true,
            feature_subsample: false,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.root = Some(build(x, y, &rows, 0, cfg, &mut rng));
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let root = self.root.as_ref().expect("predict before fit");
        (0..x.rows()).map(|i| root.predict(x.row(i))).collect()
    }
}

/// Random forest: bootstrap-aggregated CARTs with √d feature subsampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Bootstrap/shuffle seed.
    pub seed: u64,
    trees: Vec<Node>,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            n_trees: 30,
            max_depth: 8,
            seed: 23,
            trees: Vec::new(),
        }
    }
}

impl RandomForest {
    /// Forest with explicit size and depth.
    pub fn new(n_trees: usize, max_depth: usize) -> RandomForest {
        RandomForest {
            n_trees,
            max_depth,
            ..RandomForest::default()
        }
    }
}

impl Regressor for RandomForest {
    fn name(&self) -> &'static str {
        "random-forest"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        let n = x.rows();
        let cfg = TreeCfg {
            max_depth: self.max_depth,
            min_samples_split: 4,
            random_thresholds: false,
            feature_subsample: true,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.trees = (0..self.n_trees)
            .map(|_| {
                let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                build(x, y, &rows, 0, cfg, &mut rng)
            })
            .collect();
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict before fit");
        (0..x.rows())
            .map(|i| {
                self.trees
                    .iter()
                    .map(|t| t.predict(x.row(i)))
                    .sum::<f64>()
                    / self.trees.len() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_learns, synthetic};
    use super::*;

    #[test]
    fn all_learn() {
        assert_learns(&mut DecisionTree::default(), 0.85);
        assert_learns(
            &mut ExtraTree {
                max_depth: 12,
                ..ExtraTree::default()
            },
            0.70,
        );
        assert_learns(&mut RandomForest::default(), 0.85);
    }

    #[test]
    fn tree_fits_step_function_exactly() {
        // A step no linear model can capture, trivial for a tree.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let x = Matrix::from_vec_rows(rows);
        let mut t = DecisionTree::default();
        t.fit(&x, &y).unwrap();
        let pred = t.predict(&x);
        assert_eq!(pred, y);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn depth_limit_is_respected() {
        let (x, y) = synthetic(100, 0.5, 31);
        let mut t = DecisionTree {
            max_depth: 2,
            ..DecisionTree::default()
        };
        t.fit(&x, &y).unwrap();
        assert!(t.depth() <= 2);
    }

    #[test]
    fn forest_beats_single_tree_on_noise() {
        let (x, y) = synthetic(150, 1.5, 41);
        let (tr, te) = crate::train_test_split(x.rows(), 0.3, 2);
        let (xtr, ytr) = crate::take_rows(&x, &y, &tr);
        let (xte, yte) = crate::take_rows(&x, &y, &te);
        let mut tree = DecisionTree {
            max_depth: 12,
            min_samples_split: 2,
            ..DecisionTree::default()
        };
        let mut forest = RandomForest::default();
        tree.fit(&xtr, &ytr).unwrap();
        forest.fit(&xtr, &ytr).unwrap();
        let r_tree = crate::metrics::r2(&yte, &tree.predict(&xte));
        let r_forest = crate::metrics::r2(&yte, &forest.predict(&xte));
        assert!(
            r_forest > r_tree,
            "forest {r_forest:.3} should generalize better than a deep tree {r_tree:.3}"
        );
    }

    #[test]
    fn forest_is_seeded() {
        let (x, y) = synthetic(60, 0.3, 51);
        let mut a = RandomForest::default();
        let mut b = RandomForest::default();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
