//! The regression model zoo of the paper's Table IV — all 21 models,
//! implemented from scratch.
//!
//! | Family | Models |
//! |---|---|
//! | linear | [`Linear`], [`Ridge`], [`Sgd`], [`PassiveAggressive`] |
//! | Bayesian | [`BayesianRidge`], [`Ard`] |
//! | robust | [`Huber`], [`TheilSen`] |
//! | sparse | [`Lasso`], [`ElasticNet`], [`Lars`], [`LassoLars`], [`Omp`] |
//! | kernel / SVM | [`KernelRidge`], [`Svr`], [`NuSvr`], [`LinearSvr`] |
//! | trees | [`DecisionTree`], [`ExtraTree`], [`RandomForest`] |
//! | neural | [`Mlp`] |

mod bayes;
mod kernel;
mod linear;
mod mlp;
mod robust;
mod sparse;
mod tree;

pub use bayes::{Ard, BayesianRidge};
pub use kernel::{KernelRidge, LinearSvr, NuSvr, Svr};
pub use linear::{Linear, PassiveAggressive, Ridge, Sgd};
pub use mlp::Mlp;
pub use robust::{Huber, TheilSen};
pub use sparse::{ElasticNet, Lars, Lasso, LassoLars, Omp};
pub use tree::{DecisionTree, ExtraTree, RandomForest};

use mlcomp_linalg::Matrix;

/// Column means of a matrix.
pub(crate) fn column_means(x: &Matrix) -> Vec<f64> {
    (0..x.cols())
        .map(|j| mlcomp_linalg::mean(&x.col(j)))
        .collect()
}

/// Centers `x` by `means` (column-wise subtraction).
pub(crate) fn center(x: &Matrix, means: &[f64]) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            out[(i, j)] = x[(i, j)] - means[j];
        }
    }
    out
}

/// Shared linear predictor: `x·w + b` applied row-wise after centering.
pub(crate) fn predict_linear(x: &Matrix, means: &[f64], w: &[f64], intercept: f64) -> Vec<f64> {
    (0..x.rows())
        .map(|i| {
            let mut s = intercept;
            for j in 0..x.cols() {
                s += (x[(i, j)] - means[j]) * w[j];
            }
            s
        })
        .collect()
}

/// Validation shared by every `fit`: non-empty, consistent lengths.
pub(crate) fn check_xy(x: &Matrix, y: &[f64]) -> Result<(), crate::TrainError> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(crate::TrainError::new("empty design matrix"));
    }
    if x.rows() != y.len() {
        return Err(crate::TrainError::new(format!(
            "{} rows but {} targets",
            x.rows(),
            y.len()
        )));
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(crate::TrainError::new("non-finite target"));
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::Regressor;

    /// Deterministic synthetic regression data: y = 3·x₀ − 2·x₁ + 0.5 + ε.
    pub fn synthetic(n: usize, noise: f64, seed: u64) -> (Matrix, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rnd() * 4.0;
            let b = rnd() * 4.0;
            let c = rnd(); // irrelevant feature
            rows.push(vec![a, b, c]);
            y.push(3.0 * a - 2.0 * b + 0.5 + noise * rnd());
        }
        (Matrix::from_vec_rows(rows), y)
    }

    /// Fits the model on clean synthetic data and asserts the held-out R²
    /// exceeds `min_r2`.
    pub fn assert_learns(model: &mut dyn Regressor, min_r2: f64) {
        let (x, y) = synthetic(120, 0.05, 11);
        let (tr, te) = crate::train_test_split(x.rows(), 0.25, 3);
        let (xtr, ytr) = crate::take_rows(&x, &y, &tr);
        let (xte, yte) = crate::take_rows(&x, &y, &te);
        model.fit(&xtr, &ytr).expect("fit succeeds");
        let pred = model.predict(&xte);
        let r2 = crate::metrics::r2(&yte, &pred);
        assert!(
            r2 > min_r2,
            "{} reached R²={r2:.3}, needed {min_r2}",
            model.name()
        );
    }
}
