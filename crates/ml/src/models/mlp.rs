//! Multi-layer perceptron regressor: one tanh hidden layer trained with
//! Adam on standardized inputs/targets.

use super::{check_xy, column_means};
use crate::{Regressor, TrainError};
use mlcomp_linalg::Matrix;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// MLP regressor (input → tanh hidden → linear output).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs (full batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Weight-init / shuffle seed.
    pub seed: u64,
    w1: Matrix, // d × h
    b1: Vec<f64>,
    w2: Vec<f64>, // h
    b2: f64,
    means: Vec<f64>,
    scales: Vec<f64>,
    y_mean: f64,
    y_scale: f64,
}

impl Default for Mlp {
    fn default() -> Self {
        Mlp {
            hidden: 24,
            epochs: 400,
            lr: 0.01,
            seed: 8,
            w1: Matrix::zeros(0, 0),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
            means: Vec::new(),
            scales: Vec::new(),
            y_mean: 0.0,
            y_scale: 1.0,
        }
    }
}

impl Mlp {
    /// MLP with explicit width and learning rate.
    pub fn new(hidden: usize, lr: f64) -> Mlp {
        Mlp {
            hidden,
            lr,
            ..Mlp::default()
        }
    }
}

struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: f64,
}

impl Adam {
    fn new(n: usize) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0.0,
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1.0;
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let mh = self.m[i] / (1.0 - B1.powf(self.t));
            let vh = self.v[i] / (1.0 - B2.powf(self.t));
            params[i] -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

impl Regressor for Mlp {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        check_xy(x, y)?;
        let (n, d) = (x.rows(), x.cols());
        let h = self.hidden;
        self.means = column_means(x);
        self.scales = (0..d)
            .map(|j| {
                let s = mlcomp_linalg::std_dev(&x.col(j));
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        self.y_mean = mlcomp_linalg::mean(y);
        self.y_scale = mlcomp_linalg::std_dev(y).max(1e-9);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| (x[(i, j)] - self.means[j]) / self.scales[j])
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_scale).collect();

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let xavier = (1.0 / d as f64).sqrt();
        // Flattened parameters: w1 (d·h), b1 (h), w2 (h), b2 (1).
        let mut params: Vec<f64> = Vec::with_capacity(d * h + 2 * h + 1);
        for _ in 0..d * h {
            params.push(rng.gen_range(-xavier..xavier));
        }
        params.extend(std::iter::repeat_n(0.0, h));
        let xavier2 = (1.0 / h as f64).sqrt();
        for _ in 0..h {
            params.push(rng.gen_range(-xavier2..xavier2));
        }
        params.push(0.0);

        let mut adam = Adam::new(params.len());
        let nf = n as f64;
        for _ in 0..self.epochs {
            let mut grads = vec![0.0; params.len()];
            let (w1, rest) = params.split_at(d * h);
            let (b1, rest) = rest.split_at(h);
            let (w2, b2s) = rest.split_at(h);
            let b2 = b2s[0];
            for i in 0..n {
                // Forward.
                let mut hid = vec![0.0; h];
                for k in 0..h {
                    let mut s = b1[k];
                    for j in 0..d {
                        s += xs[i][j] * w1[j * h + k];
                    }
                    hid[k] = s.tanh();
                }
                let out: f64 = b2 + hid.iter().zip(w2).map(|(a, b)| a * b).sum::<f64>();
                let err = 2.0 * (out - ys[i]) / nf;
                // Backward.
                grads[d * h + 2 * h] += err; // b2
                for k in 0..h {
                    grads[d * h + h + k] += err * hid[k]; // w2
                    let dh = err * w2[k] * (1.0 - hid[k] * hid[k]);
                    grads[d * h + k] += dh; // b1
                    for j in 0..d {
                        grads[j * h + k] += dh * xs[i][j]; // w1
                    }
                }
            }
            adam.step(&mut params, &grads, self.lr);
        }

        // Unpack.
        let (w1, rest) = params.split_at(d * h);
        let (b1, rest) = rest.split_at(h);
        let (w2, b2s) = rest.split_at(h);
        self.w1 = Matrix::from_flat(d, h, w1.to_vec());
        self.b1 = b1.to_vec();
        self.w2 = w2.to_vec();
        self.b2 = b2s[0];
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.w2.is_empty(), "predict before fit");
        let d = self.means.len();
        let h = self.w2.len();
        (0..x.rows())
            .map(|i| {
                let mut out = self.b2;
                for k in 0..h {
                    let mut s = self.b1[k];
                    for j in 0..d {
                        s += (x[(i, j)] - self.means[j]) / self.scales[j] * self.w1[(j, k)];
                    }
                    out += s.tanh() * self.w2[k];
                }
                out * self.y_scale + self.y_mean
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_learns, synthetic};
    use super::*;

    #[test]
    fn learns_linear_task() {
        assert_learns(&mut Mlp::default(), 0.90);
    }

    #[test]
    fn learns_nonlinear_target() {
        // y = x₀² — out of reach for the linear zoo.
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![(i as f64 - 40.0) / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0]).collect();
        let x = Matrix::from_vec_rows(rows);
        let mut m = Mlp {
            epochs: 1500,
            ..Mlp::default()
        };
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x);
        assert!(crate::metrics::r2(&y, &pred) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = synthetic(40, 0.1, 61);
        let mut a = Mlp::default();
        let mut b = Mlp::default();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
