//! Regression evaluation metrics. The paper reports *maximum percentage
//! error* (<2% claim); MAPE and R² support the model search's ranking.

/// Mean absolute percentage error (fraction, not percent). Targets with
/// magnitude below `1e-12` are skipped to avoid division blow-ups.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        if t.abs() > 1e-12 {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Maximum absolute percentage error (fraction) — the paper's headline PE
/// accuracy metric.
pub fn max_pct_error(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    y_true
        .iter()
        .zip(y_pred)
        .filter(|(t, _)| t.abs() > 1e-12)
        .map(|(t, p)| ((t - p) / t).abs())
        .fold(0.0, f64::max)
}

/// Coefficient of determination R² (1 = perfect, can be negative).
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if ss_tot < 1e-12 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let ss: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    (ss / y_true.len() as f64).sqrt()
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 4.0];
        assert_eq!(mape(&y, &y), 0.0);
        assert_eq!(max_pct_error(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
    }

    #[test]
    fn known_values() {
        let t = [100.0, 200.0];
        let p = [110.0, 190.0];
        assert!((mape(&t, &p) - 0.075).abs() < 1e-12);
        assert!((max_pct_error(&t, &p) - 0.10).abs() < 1e-12);
        assert!((mae(&t, &p) - 10.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn zero_targets_are_skipped_in_pct_metrics() {
        let t = [0.0, 100.0];
        let p = [5.0, 90.0];
        assert!((mape(&t, &p) - 0.1).abs() < 1e-12);
        assert!((max_pct_error(&t, &p) - 0.1).abs() < 1e-12);
    }
}
