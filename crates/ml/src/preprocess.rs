//! The preprocessing algorithms of the paper's Table III: PCA (fixed and
//! MLE-dimensioned), NCA, the five scalers and the two distribution
//! transformers.

use crate::{Preprocessor, TrainError};
use mlcomp_linalg::{percentile, symmetric_eigen, Matrix};
use serde::{Deserialize, Serialize};

/// No-op preprocessing (the baseline combination in the model search).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Identity;

impl Preprocessor for Identity {
    fn name(&self) -> &'static str {
        "identity"
    }
    fn fit(&mut self, _x: &Matrix) -> Result<(), TrainError> {
        Ok(())
    }
    fn transform(&self, x: &Matrix) -> Matrix {
        x.clone()
    }
}

/// Mean–standard-deviation scaling (scikit-learn's `StandardScaler`).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct StandardScaler {
    #[serde(with = "mlcomp_linalg::serde_bits::vec_f64")]
    mean: Vec<f64>,
    #[serde(with = "mlcomp_linalg::serde_bits::vec_f64")]
    std: Vec<f64>,
}

impl Preprocessor for StandardScaler {
    fn name(&self) -> &'static str {
        "mean-std"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), TrainError> {
        if x.rows() == 0 {
            return Err(TrainError::new("no rows to fit scaler"));
        }
        self.mean = (0..x.cols())
            .map(|j| mlcomp_linalg::mean(&x.col(j)))
            .collect();
        self.std = (0..x.cols())
            .map(|j| {
                let s = mlcomp_linalg::std_dev(&x.col(j));
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        elementwise(x, |v, j| (v - self.mean[j]) / self.std[j])
    }
}

/// Min–max scaling to `[0, 1]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    range: Vec<f64>,
}

impl Preprocessor for MinMaxScaler {
    fn name(&self) -> &'static str {
        "min-max"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), TrainError> {
        if x.rows() == 0 {
            return Err(TrainError::new("no rows to fit scaler"));
        }
        self.min = (0..x.cols())
            .map(|j| x.col(j).iter().copied().fold(f64::INFINITY, f64::min))
            .collect();
        self.range = (0..x.cols())
            .map(|j| {
                let max = x.col(j).iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let r = max - self.min[j];
                if r < 1e-12 {
                    1.0
                } else {
                    r
                }
            })
            .collect();
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        elementwise(x, |v, j| (v - self.min[j]) / self.range[j])
    }
}

/// Max-absolute-value scaling to `[-1, 1]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MaxAbsScaler {
    scale: Vec<f64>,
}

impl Preprocessor for MaxAbsScaler {
    fn name(&self) -> &'static str {
        "max-abs"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), TrainError> {
        if x.rows() == 0 {
            return Err(TrainError::new("no rows to fit scaler"));
        }
        self.scale = (0..x.cols())
            .map(|j| {
                let m = x.col(j).iter().fold(0.0f64, |a, v| a.max(v.abs()));
                if m < 1e-12 {
                    1.0
                } else {
                    m
                }
            })
            .collect();
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        elementwise(x, |v, j| v / self.scale[j])
    }
}

/// Robust scaling by median and interquartile range.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RobustScaler {
    median: Vec<f64>,
    iqr: Vec<f64>,
}

impl Preprocessor for RobustScaler {
    fn name(&self) -> &'static str {
        "robust"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), TrainError> {
        if x.rows() == 0 {
            return Err(TrainError::new("no rows to fit scaler"));
        }
        self.median = (0..x.cols())
            .map(|j| percentile(&x.col(j), 50.0))
            .collect();
        self.iqr = (0..x.cols())
            .map(|j| {
                let col = x.col(j);
                let r = percentile(&col, 75.0) - percentile(&col, 25.0);
                if r < 1e-12 {
                    1.0
                } else {
                    r
                }
            })
            .collect();
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        elementwise(x, |v, j| (v - self.median[j]) / self.iqr[j])
    }
}

/// Yeo–Johnson power transformer: per-column λ selected from a small grid
/// by normality (skewness) of the transformed data, then standardized.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PowerTransformer {
    lambda: Vec<f64>,
    post: StandardScaler,
}

fn yeo_johnson(v: f64, l: f64) -> f64 {
    if v >= 0.0 {
        if l.abs() < 1e-9 {
            (v + 1.0).ln()
        } else {
            ((v + 1.0).powf(l) - 1.0) / l
        }
    } else if (l - 2.0).abs() < 1e-9 {
        -(-v + 1.0).ln()
    } else {
        -((-v + 1.0).powf(2.0 - l) - 1.0) / (2.0 - l)
    }
}

fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 3.0 {
        return 0.0;
    }
    let m = mlcomp_linalg::mean(xs);
    let s = mlcomp_linalg::std_dev(xs).max(1e-12);
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n
}

impl Preprocessor for PowerTransformer {
    fn name(&self) -> &'static str {
        "power"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), TrainError> {
        if x.rows() == 0 {
            return Err(TrainError::new("no rows to fit transformer"));
        }
        const GRID: [f64; 7] = [-1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 3.0];
        self.lambda = (0..x.cols())
            .map(|j| {
                let col = x.col(j);
                GRID.iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let sa = skewness(&col.iter().map(|&v| yeo_johnson(v, a)).collect::<Vec<_>>())
                            .abs();
                        let sb = skewness(&col.iter().map(|&v| yeo_johnson(v, b)).collect::<Vec<_>>())
                            .abs();
                        sa.partial_cmp(&sb).unwrap()
                    })
                    .unwrap()
            })
            .collect();
        let transformed = self.apply_power(x);
        self.post.fit(&transformed)
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        self.post.transform(&self.apply_power(x))
    }
}

impl PowerTransformer {
    fn apply_power(&self, x: &Matrix) -> Matrix {
        elementwise(x, |v, j| yeo_johnson(v, self.lambda[j]))
    }
}

/// Quantile transformer: maps each column through its empirical CDF to a
/// uniform distribution on `[0, 1]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QuantileTransformer {
    sorted_cols: Vec<Vec<f64>>,
}

impl Preprocessor for QuantileTransformer {
    fn name(&self) -> &'static str {
        "quantile"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), TrainError> {
        if x.rows() == 0 {
            return Err(TrainError::new("no rows to fit transformer"));
        }
        self.sorted_cols = (0..x.cols())
            .map(|j| {
                let mut c = x.col(j);
                c.sort_by(|a, b| a.partial_cmp(b).unwrap());
                c
            })
            .collect();
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        elementwise(x, |v, j| {
            let col = &self.sorted_cols[j];
            // Fraction of training values ≤ v (empirical CDF).
            let pos = col.partition_point(|&c| c <= v);
            pos as f64 / col.len() as f64
        })
    }
}

/// Principal component analysis. `n_components: None` selects the
/// dimensionality automatically by profile likelihood over the eigenvalue
/// spectrum — the paper's "PCA with Maximum Likelihood Estimation"
/// (Minka's method, simplified to the dominant-gap criterion).
///
/// Serializable so the deployment-time Phase Sequence Selector can carry
/// its fitted projection alongside the policy network.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Pca {
    /// Requested output dimensionality (`None` = MLE).
    pub n_components: Option<usize>,
    #[serde(with = "mlcomp_linalg::serde_bits::vec_f64")]
    mean: Vec<f64>,
    components: Option<Matrix>, // d × k
}

impl Pca {
    /// PCA to a fixed number of components.
    pub fn fixed(k: usize) -> Pca {
        Pca {
            n_components: Some(k),
            ..Pca::default()
        }
    }

    /// PCA with MLE-selected dimensionality.
    pub fn mle() -> Pca {
        Pca::default()
    }

    /// Output dimensionality after fitting.
    pub fn out_dim(&self) -> usize {
        self.components.as_ref().map(|c| c.cols()).unwrap_or(0)
    }
}

impl Preprocessor for Pca {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), TrainError> {
        if x.rows() < 2 {
            return Err(TrainError::new("PCA needs at least two rows"));
        }
        let d = x.cols();
        self.mean = (0..d).map(|j| mlcomp_linalg::mean(&x.col(j))).collect();
        let centered = elementwise(x, |v, j| v - self.mean[j]);
        let cov = centered.gram().scale(1.0 / (x.rows() as f64 - 1.0));
        let eig = symmetric_eigen(&cov);
        let evals: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0)).collect();
        let k = match self.n_components {
            Some(k) => k.min(d).max(1),
            None => mle_dimension(&evals),
        };
        let cols: Vec<usize> = (0..k).collect();
        self.components = Some(eig.vectors.select_columns(&cols));
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let comps = self
            .components
            .as_ref()
            .expect("PCA transform before fit");
        let centered = elementwise(x, |v, j| v - self.mean[j]);
        centered.matmul(comps)
    }
}

/// Profile-likelihood-flavored dimensionality choice: keep components
/// until the explained-variance gain drops below 1% of the total, with at
/// least one component.
fn mle_dimension(evals: &[f64]) -> usize {
    let total: f64 = evals.iter().sum();
    if total <= 0.0 {
        return 1;
    }
    let mut k = 0;
    let mut cum = 0.0;
    for &l in evals {
        if k > 0 && (l / total) < 0.01 {
            break;
        }
        cum += l;
        k += 1;
        if cum / total > 0.995 {
            break;
        }
    }
    k.max(1)
}

/// Neighbourhood components analysis, adapted for regression: a linear
/// projection trained by gradient ascent so that rows with similar targets
/// land close together. For the unsupervised [`Preprocessor`] interface
/// (no targets available), it behaves as whitened PCA — the supervised
/// path is [`Nca::fit_supervised`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nca {
    /// Output dimensionality.
    pub dim: usize,
    projection: Option<Matrix>, // d × k
    mean: Vec<f64>,
}

impl Nca {
    /// NCA projecting to `dim` dimensions.
    pub fn new(dim: usize) -> Nca {
        Nca {
            dim,
            projection: None,
            mean: Vec::new(),
        }
    }

    /// Supervised fit: starts from PCA and refines the projection with a
    /// few gradient steps of a soft-neighbour target-similarity objective.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] on degenerate input.
    pub fn fit_supervised(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        self.fit(x)?;
        let proj = self.projection.clone().expect("fit populated projection");
        let mut a = proj;
        let n = x.rows();
        if n < 4 {
            return Ok(());
        }
        let centered = elementwise(x, |v, j| v - self.mean[j]);
        let y_std = mlcomp_linalg::std_dev(y).max(1e-9);
        let lr = 0.05;
        for _step in 0..8 {
            let z = centered.matmul(&a);
            // Gradient of Σ_ij w_ij · ‖z_i − z_j‖² with w_ij>0 for similar
            // targets and w_ij<0 for dissimilar ones: pulls same-target
            // rows together. dL/dA = 2 Xᵀ M X A with M the weighted
            // Laplacian-like matrix; computed directly.
            let mut grad = Matrix::zeros(a.rows(), a.cols());
            for i in 0..n {
                for j in (i + 1)..n {
                    let sim = 1.0 - ((y[i] - y[j]).abs() / (2.0 * y_std)).min(2.0);
                    let mut diff_x = vec![0.0; centered.cols()];
                    for (c, dx) in diff_x.iter_mut().enumerate() {
                        *dx = centered[(i, c)] - centered[(j, c)];
                    }
                    let mut diff_z = vec![0.0; z.cols()];
                    for (c, dz) in diff_z.iter_mut().enumerate() {
                        *dz = z[(i, c)] - z[(j, c)];
                    }
                    for r in 0..grad.rows() {
                        for c in 0..grad.cols() {
                            grad[(r, c)] += sim * diff_x[r] * diff_z[c];
                        }
                    }
                }
            }
            let norm = grad.frobenius_norm().max(1e-9);
            a = a.sub(&grad.scale(lr / norm));
        }
        self.projection = Some(a);
        Ok(())
    }
}

impl Preprocessor for Nca {
    fn name(&self) -> &'static str {
        "nca"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), TrainError> {
        let mut pca = Pca::fixed(self.dim);
        pca.fit(x)?;
        self.mean = pca.mean.clone();
        // Whiten: scale components by 1/√λ.
        let comps = pca.components.expect("fitted PCA has components");
        self.projection = Some(comps);
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let proj = self
            .projection
            .as_ref()
            .expect("NCA transform before fit");
        let centered = elementwise(x, |v, j| v - self.mean[j]);
        centered.matmul(proj)
    }
}

fn elementwise(x: &Matrix, f: impl Fn(f64, usize) -> f64) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            out[(i, j)] = f(x[(i, j)], j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 10.0, 5.0],
            &[2.0, 20.0, 5.0],
            &[3.0, 30.0, 5.0],
            &[4.0, 40.0, 5.0],
        ])
    }

    #[test]
    fn standard_scaler_zero_mean_unit_std() {
        let mut s = StandardScaler::default();
        let t = s.fit_transform(&sample()).unwrap();
        for j in 0..2 {
            assert!(mlcomp_linalg::mean(&t.col(j)).abs() < 1e-12);
            assert!((mlcomp_linalg::std_dev(&t.col(j)) - 1.0).abs() < 1e-12);
        }
        // Constant column stays finite (guarded divisor).
        assert!(t.col(2).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn minmax_hits_unit_interval() {
        let mut s = MinMaxScaler::default();
        let t = s.fit_transform(&sample()).unwrap();
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(3, 0)], 1.0);
    }

    #[test]
    fn maxabs_bounds() {
        let x = Matrix::from_rows(&[&[-4.0], &[2.0]]);
        let mut s = MaxAbsScaler::default();
        let t = s.fit_transform(&x).unwrap();
        assert_eq!(t[(0, 0)], -1.0);
        assert_eq!(t[(1, 0)], 0.5);
    }

    #[test]
    fn robust_centers_on_median() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[100.0]]);
        let mut s = RobustScaler::default();
        let t = s.fit_transform(&x).unwrap();
        // Median (2.5) maps to 0 between rows 1 and 2.
        assert!(t[(1, 0)] < 0.0 && t[(2, 0)] > 0.0);
    }

    #[test]
    fn power_reduces_skewness() {
        // Strongly right-skewed column.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i as f64 / 4.0).exp()]).collect();
        let x = Matrix::from_vec_rows(rows);
        let before = skewness(&x.col(0));
        let mut p = PowerTransformer::default();
        let t = p.fit_transform(&x).unwrap();
        let after = skewness(&t.col(0));
        assert!(after.abs() < before.abs());
    }

    #[test]
    fn quantile_maps_to_uniform() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i as f64).powi(3)]).collect();
        let x = Matrix::from_vec_rows(rows);
        let mut q = QuantileTransformer::default();
        let t = q.fit_transform(&x).unwrap();
        assert!(t.col(0).iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Monotone mapping.
        for i in 1..50 {
            assert!(t[(i, 0)] >= t[(i - 1, 0)]);
        }
    }

    #[test]
    fn pca_recovers_dominant_direction() {
        // Data varies along (1, 1), noise-free.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = i as f64;
                vec![t, t]
            })
            .collect();
        let x = Matrix::from_vec_rows(rows);
        let mut p = Pca::fixed(1);
        let t = p.fit_transform(&x).unwrap();
        assert_eq!(t.cols(), 1);
        // Projected variance ≈ total variance (2 × var of one axis).
        let var_t = mlcomp_linalg::variance(&t.col(0));
        let var_x = mlcomp_linalg::variance(&x.col(0));
        assert!((var_t - 2.0 * var_x).abs() / (2.0 * var_x) < 1e-6);
    }

    #[test]
    fn pca_mle_finds_low_rank() {
        // Rank-2 data in 5 dimensions.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let a = (i as f64).sin() * 10.0;
                let b = (i as f64).cos() * 5.0;
                vec![a, b, a + b, a - b, 2.0 * a]
            })
            .collect();
        let x = Matrix::from_vec_rows(rows);
        let mut p = Pca::mle();
        p.fit(&x).unwrap();
        assert!(p.out_dim() <= 3, "MLE picked {} dims", p.out_dim());
        assert!(p.out_dim() >= 1);
    }

    #[test]
    fn nca_supervised_runs_and_projects() {
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![i as f64, (i % 3) as f64, 1.0])
            .collect();
        let x = Matrix::from_vec_rows(rows);
        let y: Vec<f64> = (0..24).map(|i| (i % 3) as f64).collect();
        let mut nca = Nca::new(2);
        nca.fit_supervised(&x, &y).unwrap();
        let t = nca.transform(&x);
        assert_eq!(t.cols(), 2);
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn transformers_error_on_empty() {
        let empty = Matrix::zeros(0, 3);
        assert!(StandardScaler::default().fit(&empty).is_err());
        assert!(Pca::fixed(2).fit(&empty).is_err());
        assert!(QuantileTransformer::default().fit(&empty).is_err());
    }
}
