//! The ML stack behind MLComp's Performance Estimator: preprocessing
//! algorithms (the paper's Table III), a regression model zoo (Table IV),
//! evaluation metrics, and the automatic model search of Algorithm 1.
//!
//! Everything is implemented from scratch on [`mlcomp_linalg`] — the
//! paper's scikit-learn/Optuna stack is a dependency this reproduction
//! replaces (DESIGN.md §2). All stochastic pieces take explicit seeds.
//!
//! # Example: fitting one model
//!
//! ```
//! use mlcomp_linalg::Matrix;
//! use mlcomp_ml::models::Ridge;
//! use mlcomp_ml::Regressor;
//!
//! // y = 2·x₀ + 1
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//! let y = [1.0, 3.0, 5.0, 7.0];
//! let mut model = Ridge::new(1e-6);
//! model.fit(&x, &y).unwrap();
//! let pred = model.predict(&Matrix::from_rows(&[&[4.0]]));
//! assert!((pred[0] - 9.0).abs() < 1e-3);
//! ```

pub mod any;
pub mod metrics;
pub mod models;
pub mod preprocess;
pub mod search;
pub mod tuner;

use mlcomp_linalg::Matrix;
use std::fmt;

/// Training failed (degenerate input, singular system, no data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainError {
    /// What went wrong.
    pub message: String,
}

impl TrainError {
    /// Creates an error with a message.
    pub fn new(message: impl Into<String>) -> TrainError {
        TrainError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "training failed: {}", self.message)
    }
}

impl std::error::Error for TrainError {}

/// A regression model: fit on `(X, y)`, predict on new rows.
///
/// All the paper's Table IV models implement this trait; the model search
/// treats them uniformly as boxed objects.
pub trait Regressor {
    /// Human-readable model name (matches Table IV's row).
    fn name(&self) -> &'static str;

    /// Fits the model.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] on degenerate input (no rows, dimension
    /// mismatch, singular systems that cannot be regularized away).
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError>;

    /// Predicts one value per row of `x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before a successful
    /// [`Regressor::fit`] or with a mismatched column count.
    fn predict(&self, x: &Matrix) -> Vec<f64>;
}

/// A feature-space transformation: fit on training rows, transform any
/// rows. All the paper's Table III preprocessing algorithms implement
/// this.
pub trait Preprocessor {
    /// Human-readable name (matches Table III's entry).
    fn name(&self) -> &'static str;

    /// Learns the transformation parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when the input is degenerate for this
    /// transform (e.g. PCA on an empty matrix).
    fn fit(&mut self, x: &Matrix) -> Result<(), TrainError>;

    /// Applies the learned transformation.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before a successful fit or
    /// with a mismatched column count.
    fn transform(&self, x: &Matrix) -> Matrix;

    /// Fits and transforms in one step.
    ///
    /// # Errors
    ///
    /// Same as [`Preprocessor::fit`].
    fn fit_transform(&mut self, x: &Matrix) -> Result<Matrix, TrainError> {
        self.fit(x)?;
        Ok(self.transform(x))
    }
}

pub use any::{AnyModel, AnyPreprocessor};
pub use search::{model_zoo, preprocessor_zoo, FittedPipeline, ModelSearch, SearchOutcome};

/// Deterministic train/test split: shuffles row indices with the seed and
/// returns `(train, test)` index sets with `test_fraction` of the rows in
/// the test set (at least 1 each when possible).
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f64 * test_fraction).round() as usize).clamp(1, n.saturating_sub(1).max(1));
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

/// Extracts the given rows of a matrix and target slice.
pub fn take_rows(x: &Matrix, y: &[f64], rows: &[usize]) -> (Matrix, Vec<f64>) {
    let mut out = Matrix::zeros(rows.len(), x.cols());
    let mut ty = Vec::with_capacity(rows.len());
    for (ni, &ri) in rows.iter().enumerate() {
        out.row_mut(ni).copy_from_slice(x.row(ri));
        ty.push(y[ri]);
    }
    (out, ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let (tr1, te1) = train_test_split(100, 0.2, 7);
        let (tr2, te2) = train_test_split(100, 0.2, 7);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(te1.len(), 20);
        assert_eq!(tr1.len(), 80);
        let mut all: Vec<usize> = tr1.iter().chain(te1.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        let (_, te3) = train_test_split(100, 0.2, 8);
        assert_ne!(te1, te3, "different seeds shuffle differently");
    }

    #[test]
    fn take_rows_selects() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = [10.0, 20.0, 30.0];
        let (xs, ys) = take_rows(&x, &y, &[2, 0]);
        assert_eq!(xs.row(0), &[3.0]);
        assert_eq!(xs.row(1), &[1.0]);
        assert_eq!(ys, vec![30.0, 10.0]);
    }
}
