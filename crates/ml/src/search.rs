//! Algorithm 1 of the paper: automatic search over preprocessing methods
//! (Table III) and regression models (Table IV) for the best-fitting
//! Performance Estimator pipeline.

use crate::any::{AnyModel, AnyPreprocessor};
use crate::{metrics, take_rows, train_test_split, Preprocessor, Regressor, TrainError};
use mlcomp_linalg::Matrix;
use mlcomp_parallel::WorkerPool;
use mlcomp_trace as trace;
use serde::{Deserialize, Serialize};

/// Names of all Table IV models, in the paper's row order.
pub fn model_zoo() -> Vec<&'static str> {
    vec![
        "ridge",
        "kernel-ridge",
        "bayesian-ridge",
        "linear",
        "sgd",
        "passive-aggressive",
        "ard",
        "huber",
        "theil-sen",
        "lars",
        "lasso",
        "lasso-lars",
        "svr",
        "nu-svr",
        "linear-svr",
        "elastic-net",
        "omp",
        "mlp",
        "decision-tree",
        "extra-tree",
        "random-forest",
    ]
}

/// Names of all Table III preprocessing algorithms (plus the identity
/// baseline).
pub fn preprocessor_zoo() -> Vec<&'static str> {
    vec![
        "identity",
        "pca",
        "nca",
        "mean-std",
        "min-max",
        "max-abs",
        "robust",
        "power",
        "quantile",
    ]
}

/// Instantiates a model by zoo name.
pub fn create_model(name: &str) -> Option<Box<dyn Regressor>> {
    AnyModel::from_name(name).map(|m| Box::new(m) as Box<dyn Regressor>)
}

/// Instantiates a preprocessor by zoo name.
pub fn create_preprocessor(name: &str) -> Option<Box<dyn Preprocessor>> {
    AnyPreprocessor::from_name(name).map(|p| Box::new(p) as Box<dyn Preprocessor>)
}

/// A fitted preprocessing + regression pipeline — the trained Performance
/// Estimator for one metric.
///
/// Holds the closed [`AnyPreprocessor`]/[`AnyModel`] sums rather than
/// trait objects so a trained pipeline can be exported inside an artifact
/// bundle and loaded back with bit-identical behaviour.
#[derive(Clone, Serialize, Deserialize)]
pub struct FittedPipeline {
    /// Preprocessor name.
    pub preprocessor_name: String,
    /// Model name.
    pub model_name: String,
    preprocessor: AnyPreprocessor,
    model: AnyModel,
}

impl std::fmt::Debug for FittedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FittedPipeline({} → {})",
            self.preprocessor_name, self.model_name
        )
    }
}

impl FittedPipeline {
    /// Predicts for new feature rows.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.model.predict(&self.preprocessor.transform(x))
    }
}

/// One leaderboard entry from the search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchEntry {
    /// Preprocessor name.
    pub preprocessor: String,
    /// Model name.
    pub model: String,
    /// Held-out accuracy (`1 − MAPE`).
    pub accuracy: f64,
    /// Held-out maximum percentage error.
    pub max_pct_error: f64,
    /// Held-out R².
    pub r2: f64,
}

/// The result of a model search.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The winning pipeline, refit on the full dataset.
    pub best: FittedPipeline,
    /// Held-out accuracy of the winner.
    pub accuracy: f64,
    /// All evaluated combinations, best first.
    pub leaderboard: Vec<SearchEntry>,
    /// Whether the threshold early-exit of Algorithm 1 fired.
    pub early_stopped: bool,
}

/// Algorithm 1: `ModelSearch(input, accuracy_thr, list_models)`.
///
/// Cycles through every (preprocessing, model) combination, trains on a
/// split, tests on the held-out rows, tracks the best accuracy, and stops
/// early once `accuracy_threshold` is reached. Accuracy is `1 − MAPE`,
/// matching the paper's relative-error reporting.
///
/// Candidates are evaluated on a worker pool in chunks that respect the
/// paper's candidate order, so the leaderboard — including where the
/// early exit fires — is identical to a sequential sweep at any
/// [`num_threads`](ModelSearch::num_threads).
///
/// # Examples
///
/// ```
/// use mlcomp_linalg::Matrix;
/// use mlcomp_ml::search::ModelSearch;
///
/// // A small dataset following y = 3a − 2b + 5.
/// let rows: Vec<[f64; 2]> = (0..24).map(|i| [i as f64, (i % 5) as f64]).collect();
/// let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
/// let x = Matrix::from_rows(&row_refs);
/// let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
///
/// let outcome = ModelSearch::quick().run(&x, &y).unwrap();
/// assert!(outcome.accuracy > 0.9);
///
/// // The outcome is independent of the fan-out width.
/// let wide = ModelSearch { num_threads: 8, ..ModelSearch::quick() };
/// let outcome8 = wide.run(&x, &y).unwrap();
/// assert_eq!(outcome.best.model_name, outcome8.best.model_name);
/// assert_eq!(outcome.leaderboard, outcome8.leaderboard);
/// ```
#[derive(Debug, Clone)]
pub struct ModelSearch {
    /// Early-exit threshold on held-out accuracy (`accuracy_thr`).
    pub accuracy_threshold: f64,
    /// Held-out fraction for the train/test split.
    pub test_fraction: f64,
    /// Split seed.
    pub seed: u64,
    /// Models to consider (`list_models`); defaults to the full Table IV.
    pub models: Vec<String>,
    /// Preprocessors to consider; defaults to the full Table III.
    pub preprocessors: Vec<String>,
    /// Worker threads for candidate evaluation; 0 = host parallelism.
    /// The outcome is identical at any value.
    pub num_threads: usize,
}

impl Default for ModelSearch {
    fn default() -> Self {
        ModelSearch {
            accuracy_threshold: 0.995,
            test_fraction: 0.25,
            seed: 42,
            models: model_zoo().into_iter().map(String::from).collect(),
            preprocessors: preprocessor_zoo().into_iter().map(String::from).collect(),
            num_threads: 0,
        }
    }
}

impl ModelSearch {
    /// A faster search over a representative subset of the zoo (used by
    /// tests and the RL training loop, where the PE is retrained often).
    pub fn quick() -> ModelSearch {
        ModelSearch {
            models: ["ridge", "linear", "lasso", "decision-tree", "random-forest"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            preprocessors: ["identity", "mean-std", "pca"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ..ModelSearch::default()
        }
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when no combination could be trained at all
    /// (degenerate dataset).
    pub fn run(&self, x: &Matrix, y: &[f64]) -> Result<SearchOutcome, TrainError> {
        if x.rows() < 8 {
            return Err(TrainError::new("need at least 8 samples for model search"));
        }
        let (train, test) = train_test_split(x.rows(), self.test_fraction, self.seed);
        let (xtr, ytr) = take_rows(x, y, &train);
        let (xte, yte) = take_rows(x, y, &test);

        // Candidates in the paper's order: models outer, preprocessors
        // inner. Chunks are evaluated in parallel but consumed in order,
        // truncating at the first above-threshold entry, so the resulting
        // leaderboard matches a sequential sweep exactly (at the cost of
        // at most one chunk of extra fits past the early-exit point).
        let candidates: Vec<(&String, &String)> = self
            .models
            .iter()
            .flat_map(|m| self.preprocessors.iter().map(move |p| (m, p)))
            .collect();
        let pool = WorkerPool::new(self.num_threads);
        let chunk_len = pool.num_threads().max(1) * 2;
        let mut search_span = trace::span("search");
        if search_span.is_recording() {
            search_span.field("candidates", candidates.len());
            search_span.field("rows", x.rows());
            search_span.field("threads", pool.num_threads());
        }
        let mut leaderboard: Vec<SearchEntry> = Vec::new();
        let mut early_stopped = false;
        'outer: for batch in candidates.chunks(chunk_len) {
            let evaluated = pool.map(batch, |_, &(model_name, prep_name)| {
                self.evaluate_candidate(model_name, prep_name, &xtr, &ytr, &xte, &yte)
            });
            for entry in evaluated.into_iter().flatten() {
                let stop = entry.accuracy > self.accuracy_threshold;
                leaderboard.push(entry);
                if stop {
                    early_stopped = true;
                    break 'outer;
                }
            }
        }
        leaderboard.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).unwrap());
        if search_span.is_recording() {
            search_span.field("evaluated", leaderboard.len());
            search_span.field("early_stopped", early_stopped);
            if let Some(best) = leaderboard.first() {
                search_span.field("best_model", best.model.as_str());
                search_span.field("best_accuracy", best.accuracy);
            }
        }
        let Some(winner) = leaderboard.first().cloned() else {
            return Err(TrainError::new("no model/preprocessor combination trained"));
        };

        // Refit the winner on the full dataset.
        let mut prep =
            AnyPreprocessor::from_name(&winner.preprocessor).expect("winner came from the zoo");
        let mut model = AnyModel::from_name(&winner.model).expect("winner came from the zoo");
        let px = prep.fit_transform(x)?;
        model.fit(&px, y)?;

        Ok(SearchOutcome {
            best: FittedPipeline {
                preprocessor_name: winner.preprocessor.clone(),
                model_name: winner.model.clone(),
                preprocessor: prep,
                model,
            },
            accuracy: winner.accuracy,
            leaderboard,
            early_stopped,
        })
    }

    /// Fits and scores one (model, preprocessor) candidate on the split;
    /// `None` when the candidate cannot be constructed, fails to train, or
    /// predicts non-finite values — matching the sequential `continue`s.
    fn evaluate_candidate(
        &self,
        model_name: &str,
        prep_name: &str,
        xtr: &Matrix,
        ytr: &[f64],
        xte: &Matrix,
        yte: &[f64],
    ) -> Option<SearchEntry> {
        let mut fit_span = trace::span("search.fit");
        if fit_span.is_recording() {
            fit_span.field("model", model_name);
            fit_span.field("prep", prep_name);
        }
        let mut prep = create_preprocessor(prep_name)?;
        let mut model = create_model(model_name)?;
        let ptr = prep.fit_transform(xtr).ok()?;
        model.fit(&ptr, ytr).ok()?;
        let pred = model.predict(&prep.transform(xte));
        if pred.iter().any(|p| !p.is_finite()) {
            return None;
        }
        let acc = 1.0 - metrics::mape(yte, &pred);
        if fit_span.is_recording() {
            fit_span.field("accuracy", acc);
            trace::observe("search.accuracy", acc);
        }
        Some(SearchEntry {
            preprocessor: prep_name.to_string(),
            model: model_name.to_string(),
            accuracy: acc,
            max_pct_error: metrics::max_pct_error(yte, &pred),
            r2: metrics::r2(yte, &pred),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoos_match_the_paper_tables() {
        assert_eq!(model_zoo().len(), 21, "Table IV lists 21 models");
        assert_eq!(
            preprocessor_zoo().len(),
            9,
            "Table III lists 8 algorithms + identity baseline"
        );
        for m in model_zoo() {
            assert!(create_model(m).is_some(), "{m} must construct");
        }
        for p in preprocessor_zoo() {
            assert!(create_preprocessor(p).is_some(), "{p} must construct");
        }
        assert!(create_model("gpt").is_none());
        assert!(create_preprocessor("umap").is_none());
    }

    #[test]
    fn search_finds_accurate_pipeline_on_linear_data() {
        let (x, y) = crate::models::testutil::synthetic(120, 0.02, 77);
        let search = ModelSearch::quick();
        let out = search.run(&x, &y).unwrap();
        assert!(
            out.accuracy > 0.9,
            "search accuracy {} on an easy task",
            out.accuracy
        );
        assert!(!out.leaderboard.is_empty());
        // Leaderboard is sorted.
        for w in out.leaderboard.windows(2) {
            assert!(w[0].accuracy >= w[1].accuracy);
        }
        // Refit winner predicts well on the training data.
        let pred = out.best.predict(&x);
        assert!(crate::metrics::r2(&y, &pred) > 0.9);
    }

    #[test]
    fn threshold_stops_early() {
        let (x, y) = crate::models::testutil::synthetic(120, 0.0, 78);
        let mut search = ModelSearch::quick();
        search.accuracy_threshold = 0.5; // trivially reached
        let out = search.run(&x, &y).unwrap();
        assert!(out.early_stopped);
        assert_eq!(out.leaderboard.len(), 1, "stopped after the first combo");
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let (x, y) = crate::models::testutil::synthetic(120, 0.02, 79);
        let reference = ModelSearch {
            num_threads: 1,
            ..ModelSearch::quick()
        }
        .run(&x, &y)
        .unwrap();
        for threads in [2, 4, 8] {
            let out = ModelSearch {
                num_threads: threads,
                ..ModelSearch::quick()
            }
            .run(&x, &y)
            .unwrap();
            assert_eq!(reference.leaderboard, out.leaderboard, "threads={threads}");
            assert_eq!(reference.early_stopped, out.early_stopped);
            assert_eq!(reference.best.model_name, out.best.model_name);
            assert_eq!(reference.best.preprocessor_name, out.best.preprocessor_name);
        }
    }

    #[test]
    fn search_errors_on_tiny_dataset() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let y = [1.0, 2.0];
        assert!(ModelSearch::quick().run(&x, &y).is_err());
    }
}
