//! Algorithm 1 of the paper: automatic search over preprocessing methods
//! (Table III) and regression models (Table IV) for the best-fitting
//! Performance Estimator pipeline.

use crate::models::*;
use crate::preprocess::*;
use crate::{metrics, take_rows, train_test_split, Preprocessor, Regressor, TrainError};
use mlcomp_linalg::Matrix;

/// Names of all Table IV models, in the paper's row order.
pub fn model_zoo() -> Vec<&'static str> {
    vec![
        "ridge",
        "kernel-ridge",
        "bayesian-ridge",
        "linear",
        "sgd",
        "passive-aggressive",
        "ard",
        "huber",
        "theil-sen",
        "lars",
        "lasso",
        "lasso-lars",
        "svr",
        "nu-svr",
        "linear-svr",
        "elastic-net",
        "omp",
        "mlp",
        "decision-tree",
        "extra-tree",
        "random-forest",
    ]
}

/// Names of all Table III preprocessing algorithms (plus the identity
/// baseline).
pub fn preprocessor_zoo() -> Vec<&'static str> {
    vec![
        "identity",
        "pca",
        "nca",
        "mean-std",
        "min-max",
        "max-abs",
        "robust",
        "power",
        "quantile",
    ]
}

/// Instantiates a model by zoo name.
pub fn create_model(name: &str) -> Option<Box<dyn Regressor>> {
    Some(match name {
        "ridge" => Box::new(Ridge::default()),
        "kernel-ridge" => Box::new(KernelRidge::default()),
        "bayesian-ridge" => Box::new(BayesianRidge::default()),
        "linear" => Box::new(Linear::default()),
        "sgd" => Box::new(Sgd::default()),
        "passive-aggressive" => Box::new(PassiveAggressive::default()),
        "ard" => Box::new(Ard::default()),
        "huber" => Box::new(Huber::default()),
        "theil-sen" => Box::new(TheilSen::default()),
        "lars" => Box::new(Lars::default()),
        "lasso" => Box::new(Lasso::default()),
        "lasso-lars" => Box::new(LassoLars::default()),
        "svr" => Box::new(Svr::default()),
        "nu-svr" => Box::new(NuSvr::default()),
        "linear-svr" => Box::new(LinearSvr::default()),
        "elastic-net" => Box::new(ElasticNet::default()),
        "omp" => Box::new(Omp::default()),
        "mlp" => Box::new(Mlp::default()),
        "decision-tree" => Box::new(DecisionTree::default()),
        "extra-tree" => Box::new(ExtraTree::default()),
        "random-forest" => Box::new(RandomForest::default()),
        _ => return None,
    })
}

/// Instantiates a preprocessor by zoo name.
pub fn create_preprocessor(name: &str) -> Option<Box<dyn Preprocessor>> {
    Some(match name {
        "identity" => Box::new(Identity),
        "pca" => Box::new(Pca::mle()),
        "nca" => Box::new(Nca::new(8)),
        "mean-std" => Box::new(StandardScaler::default()),
        "min-max" => Box::new(MinMaxScaler::default()),
        "max-abs" => Box::new(MaxAbsScaler::default()),
        "robust" => Box::new(RobustScaler::default()),
        "power" => Box::new(PowerTransformer::default()),
        "quantile" => Box::new(QuantileTransformer::default()),
        _ => return None,
    })
}

/// A fitted preprocessing + regression pipeline — the trained Performance
/// Estimator for one metric.
pub struct FittedPipeline {
    /// Preprocessor name.
    pub preprocessor_name: String,
    /// Model name.
    pub model_name: String,
    preprocessor: Box<dyn Preprocessor>,
    model: Box<dyn Regressor>,
}

impl std::fmt::Debug for FittedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FittedPipeline({} → {})",
            self.preprocessor_name, self.model_name
        )
    }
}

impl FittedPipeline {
    /// Predicts for new feature rows.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.model.predict(&self.preprocessor.transform(x))
    }
}

/// One leaderboard entry from the search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchEntry {
    /// Preprocessor name.
    pub preprocessor: String,
    /// Model name.
    pub model: String,
    /// Held-out accuracy (`1 − MAPE`).
    pub accuracy: f64,
    /// Held-out maximum percentage error.
    pub max_pct_error: f64,
    /// Held-out R².
    pub r2: f64,
}

/// The result of a model search.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The winning pipeline, refit on the full dataset.
    pub best: FittedPipeline,
    /// Held-out accuracy of the winner.
    pub accuracy: f64,
    /// All evaluated combinations, best first.
    pub leaderboard: Vec<SearchEntry>,
    /// Whether the threshold early-exit of Algorithm 1 fired.
    pub early_stopped: bool,
}

/// Algorithm 1: `ModelSearch(input, accuracy_thr, list_models)`.
///
/// Cycles through every (preprocessing, model) combination, trains on a
/// split, tests on the held-out rows, tracks the best accuracy, and stops
/// early once `accuracy_threshold` is reached. Accuracy is `1 − MAPE`,
/// matching the paper's relative-error reporting.
#[derive(Debug, Clone)]
pub struct ModelSearch {
    /// Early-exit threshold on held-out accuracy (`accuracy_thr`).
    pub accuracy_threshold: f64,
    /// Held-out fraction for the train/test split.
    pub test_fraction: f64,
    /// Split seed.
    pub seed: u64,
    /// Models to consider (`list_models`); defaults to the full Table IV.
    pub models: Vec<String>,
    /// Preprocessors to consider; defaults to the full Table III.
    pub preprocessors: Vec<String>,
}

impl Default for ModelSearch {
    fn default() -> Self {
        ModelSearch {
            accuracy_threshold: 0.995,
            test_fraction: 0.25,
            seed: 42,
            models: model_zoo().into_iter().map(String::from).collect(),
            preprocessors: preprocessor_zoo().into_iter().map(String::from).collect(),
        }
    }
}

impl ModelSearch {
    /// A faster search over a representative subset of the zoo (used by
    /// tests and the RL training loop, where the PE is retrained often).
    pub fn quick() -> ModelSearch {
        ModelSearch {
            models: ["ridge", "linear", "lasso", "decision-tree", "random-forest"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            preprocessors: ["identity", "mean-std", "pca"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ..ModelSearch::default()
        }
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when no combination could be trained at all
    /// (degenerate dataset).
    pub fn run(&self, x: &Matrix, y: &[f64]) -> Result<SearchOutcome, TrainError> {
        if x.rows() < 8 {
            return Err(TrainError::new("need at least 8 samples for model search"));
        }
        let (train, test) = train_test_split(x.rows(), self.test_fraction, self.seed);
        let (xtr, ytr) = take_rows(x, y, &train);
        let (xte, yte) = take_rows(x, y, &test);

        let mut leaderboard: Vec<SearchEntry> = Vec::new();
        let mut early_stopped = false;
        'outer: for model_name in &self.models {
            for prep_name in &self.preprocessors {
                let Some(mut prep) = create_preprocessor(prep_name) else {
                    continue;
                };
                let Some(mut model) = create_model(model_name) else {
                    continue;
                };
                let Ok(ptr) = prep.fit_transform(&xtr) else {
                    continue;
                };
                if model.fit(&ptr, &ytr).is_err() {
                    continue;
                }
                let pred = model.predict(&prep.transform(&xte));
                if pred.iter().any(|p| !p.is_finite()) {
                    continue;
                }
                let acc = 1.0 - metrics::mape(&yte, &pred);
                leaderboard.push(SearchEntry {
                    preprocessor: prep_name.clone(),
                    model: model_name.clone(),
                    accuracy: acc,
                    max_pct_error: metrics::max_pct_error(&yte, &pred),
                    r2: metrics::r2(&yte, &pred),
                });
                if acc > self.accuracy_threshold {
                    early_stopped = true;
                    break 'outer;
                }
            }
        }
        leaderboard.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).unwrap());
        let Some(winner) = leaderboard.first().cloned() else {
            return Err(TrainError::new("no model/preprocessor combination trained"));
        };

        // Refit the winner on the full dataset.
        let mut prep =
            create_preprocessor(&winner.preprocessor).expect("winner came from the zoo");
        let mut model = create_model(&winner.model).expect("winner came from the zoo");
        let px = prep.fit_transform(x)?;
        model.fit(&px, y)?;

        Ok(SearchOutcome {
            best: FittedPipeline {
                preprocessor_name: winner.preprocessor.clone(),
                model_name: winner.model.clone(),
                preprocessor: prep,
                model,
            },
            accuracy: winner.accuracy,
            leaderboard,
            early_stopped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoos_match_the_paper_tables() {
        assert_eq!(model_zoo().len(), 21, "Table IV lists 21 models");
        assert_eq!(
            preprocessor_zoo().len(),
            9,
            "Table III lists 8 algorithms + identity baseline"
        );
        for m in model_zoo() {
            assert!(create_model(m).is_some(), "{m} must construct");
        }
        for p in preprocessor_zoo() {
            assert!(create_preprocessor(p).is_some(), "{p} must construct");
        }
        assert!(create_model("gpt").is_none());
        assert!(create_preprocessor("umap").is_none());
    }

    #[test]
    fn search_finds_accurate_pipeline_on_linear_data() {
        let (x, y) = crate::models::testutil::synthetic(120, 0.02, 77);
        let search = ModelSearch::quick();
        let out = search.run(&x, &y).unwrap();
        assert!(
            out.accuracy > 0.9,
            "search accuracy {} on an easy task",
            out.accuracy
        );
        assert!(!out.leaderboard.is_empty());
        // Leaderboard is sorted.
        for w in out.leaderboard.windows(2) {
            assert!(w[0].accuracy >= w[1].accuracy);
        }
        // Refit winner predicts well on the training data.
        let pred = out.best.predict(&x);
        assert!(crate::metrics::r2(&y, &pred) > 0.9);
    }

    #[test]
    fn threshold_stops_early() {
        let (x, y) = crate::models::testutil::synthetic(120, 0.0, 78);
        let mut search = ModelSearch::quick();
        search.accuracy_threshold = 0.5; // trivially reached
        let out = search.run(&x, &y).unwrap();
        assert!(out.early_stopped);
        assert_eq!(out.leaderboard.len(), 1, "stopped after the first combo");
    }

    #[test]
    fn search_errors_on_tiny_dataset() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let y = [1.0, 2.0];
        assert!(ModelSearch::quick().run(&x, &y).is_err());
    }
}
