//! Closed, serializable sums over the model and preprocessor zoos.
//!
//! The model search works with `Box<dyn Regressor>` / `Box<dyn
//! Preprocessor>` internally, but a trained Performance Estimator has to
//! leave the process inside an artifact bundle (DESIGN.md §12). Trait
//! objects cannot round-trip through serde, so [`AnyModel`] and
//! [`AnyPreprocessor`] enumerate the zoos of the paper's Tables III/IV as
//! concrete variants; each variant serializes with its fitted parameters
//! using the externally-tagged layout (`{"Ridge": {…}}`).
//!
//! The enums implement the same [`Regressor`]/[`Preprocessor`] traits by
//! delegation, so fitted pipelines behave identically whether they were
//! trained in-process or loaded from a bundle.

use crate::models::*;
use crate::preprocess::*;
use crate::{Preprocessor, Regressor, TrainError};
use mlcomp_linalg::Matrix;
use serde::{Deserialize, Serialize};

macro_rules! any_model {
    ($( $name:literal => $variant:ident ),+ $(,)?) => {
        /// Every Table IV regression model as one serializable sum type.
        ///
        /// # Examples
        ///
        /// ```
        /// use mlcomp_ml::any::AnyModel;
        /// use mlcomp_ml::Regressor;
        ///
        /// let model = AnyModel::from_name("ridge").unwrap();
        /// assert_eq!(model.name(), "ridge");
        /// assert!(AnyModel::from_name("gpt").is_none());
        /// ```
        #[derive(Debug, Clone, Serialize, Deserialize)]
        pub enum AnyModel {
            $(
                #[doc = concat!("The `", $name, "` model.")]
                $variant($variant),
            )+
        }

        impl AnyModel {
            /// Instantiates a default-configured model by zoo name
            /// (`None` for names outside Table IV).
            pub fn from_name(name: &str) -> Option<AnyModel> {
                Some(match name {
                    $( $name => AnyModel::$variant($variant::default()), )+
                    _ => return None,
                })
            }
        }

        impl Regressor for AnyModel {
            fn name(&self) -> &'static str {
                match self {
                    $( AnyModel::$variant(m) => m.name(), )+
                }
            }

            fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
                match self {
                    $( AnyModel::$variant(m) => m.fit(x, y), )+
                }
            }

            fn predict(&self, x: &Matrix) -> Vec<f64> {
                match self {
                    $( AnyModel::$variant(m) => m.predict(x), )+
                }
            }
        }
    };
}

any_model! {
    "ridge" => Ridge,
    "kernel-ridge" => KernelRidge,
    "bayesian-ridge" => BayesianRidge,
    "linear" => Linear,
    "sgd" => Sgd,
    "passive-aggressive" => PassiveAggressive,
    "ard" => Ard,
    "huber" => Huber,
    "theil-sen" => TheilSen,
    "lars" => Lars,
    "lasso" => Lasso,
    "lasso-lars" => LassoLars,
    "svr" => Svr,
    "nu-svr" => NuSvr,
    "linear-svr" => LinearSvr,
    "elastic-net" => ElasticNet,
    "omp" => Omp,
    "mlp" => Mlp,
    "decision-tree" => DecisionTree,
    "extra-tree" => ExtraTree,
    "random-forest" => RandomForest,
}

macro_rules! any_preprocessor {
    ($( $name:literal => $variant:ident ($ctor:expr) ),+ $(,)?) => {
        /// Every Table III preprocessing algorithm (plus the identity
        /// baseline) as one serializable sum type.
        #[derive(Debug, Clone, Serialize, Deserialize)]
        pub enum AnyPreprocessor {
            $(
                #[doc = concat!("The `", $name, "` preprocessor.")]
                $variant($variant),
            )+
        }

        impl AnyPreprocessor {
            /// Instantiates a default-configured preprocessor by zoo name
            /// (`None` for names outside Table III).
            pub fn from_name(name: &str) -> Option<AnyPreprocessor> {
                Some(match name {
                    $( $name => AnyPreprocessor::$variant($ctor), )+
                    _ => return None,
                })
            }
        }

        impl Preprocessor for AnyPreprocessor {
            fn name(&self) -> &'static str {
                match self {
                    $( AnyPreprocessor::$variant(p) => p.name(), )+
                }
            }

            fn fit(&mut self, x: &Matrix) -> Result<(), TrainError> {
                match self {
                    $( AnyPreprocessor::$variant(p) => p.fit(x), )+
                }
            }

            fn transform(&self, x: &Matrix) -> Matrix {
                match self {
                    $( AnyPreprocessor::$variant(p) => p.transform(x), )+
                }
            }
        }
    };
}

any_preprocessor! {
    "identity" => Identity(Identity),
    "pca" => Pca(Pca::mle()),
    "nca" => Nca(Nca::new(8)),
    "mean-std" => StandardScaler(StandardScaler::default()),
    "min-max" => MinMaxScaler(MinMaxScaler::default()),
    "max-abs" => MaxAbsScaler(MaxAbsScaler::default()),
    "robust" => RobustScaler(RobustScaler::default()),
    "power" => PowerTransformer(PowerTransformer::default()),
    "quantile" => QuantileTransformer(QuantileTransformer::default()),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::synthetic;
    use crate::search::{model_zoo, preprocessor_zoo};

    #[test]
    fn every_zoo_name_constructs_and_round_trips_names() {
        for name in model_zoo() {
            let m = AnyModel::from_name(name).unwrap_or_else(|| panic!("{name} constructs"));
            assert_eq!(m.name(), name);
        }
        for name in preprocessor_zoo() {
            let p =
                AnyPreprocessor::from_name(name).unwrap_or_else(|| panic!("{name} constructs"));
            assert_eq!(p.name(), name);
        }
        assert!(AnyModel::from_name("gpt").is_none());
        assert!(AnyPreprocessor::from_name("umap").is_none());
    }

    #[test]
    fn fitted_models_round_trip_through_json_bit_exactly() {
        let (x, y) = synthetic(80, 0.05, 3);
        for name in model_zoo() {
            let mut m = AnyModel::from_name(name).unwrap();
            m.fit(&x, &y).unwrap_or_else(|e| panic!("{name} fits: {e}"));
            let json = serde_json::to_string(&m).unwrap();
            let back: AnyModel = serde_json::from_str(&json)
                .unwrap_or_else(|e| panic!("{name} round-trips: {e}"));
            assert_eq!(back.name(), name);
            let a = m.predict(&x);
            let b = back.predict(&x);
            assert_eq!(a, b, "{name} predictions must be bit-identical");
        }
    }

    #[test]
    fn fitted_preprocessors_round_trip_through_json_bit_exactly() {
        let (x, _) = synthetic(80, 0.05, 4);
        for name in preprocessor_zoo() {
            let mut p = AnyPreprocessor::from_name(name).unwrap();
            p.fit(&x).unwrap_or_else(|e| panic!("{name} fits: {e}"));
            let json = serde_json::to_string(&p).unwrap();
            let back: AnyPreprocessor = serde_json::from_str(&json)
                .unwrap_or_else(|e| panic!("{name} round-trips: {e}"));
            let a = p.transform(&x);
            let b = back.transform(&x);
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "{name} transforms must be bit-identical"
            );
        }
    }
}
