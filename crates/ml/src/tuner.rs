//! Seeded random-search hyper-parameter tuning — the reproduction's
//! stand-in for the paper's Optuna dependency (DESIGN.md §2).

use crate::models::*;
use crate::{metrics, take_rows, train_test_split, Regressor, TrainError};
use mlcomp_linalg::Matrix;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// One tuning trial: sampled parameters and the held-out accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Sampled hyper-parameters (name → value).
    pub params: BTreeMap<String, f64>,
    /// Held-out accuracy (`1 − MAPE`).
    pub accuracy: f64,
}

/// The tuner's result: the best trial plus the model it produced, refit on
/// the full data.
pub struct TuneOutcome {
    /// The winning configuration.
    pub best: Trial,
    /// The tuned model, refit on all rows.
    pub model: Box<dyn Regressor>,
    /// All trials, best first.
    pub trials: Vec<Trial>,
}

impl std::fmt::Debug for TuneOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TuneOutcome(best={:?}, trials={})",
            self.best,
            self.trials.len()
        )
    }
}

/// Random-search tuner over a model's hyper-parameter space.
#[derive(Debug, Clone)]
pub struct Tuner {
    /// Number of random trials.
    pub n_trials: usize,
    /// Sampling / split seed.
    pub seed: u64,
    /// Held-out fraction.
    pub test_fraction: f64,
}

impl Default for Tuner {
    fn default() -> Self {
        Tuner {
            n_trials: 20,
            seed: 13,
            test_fraction: 0.25,
        }
    }
}

fn log_uniform(rng: &mut rand::rngs::StdRng, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo.ln()..hi.ln())).exp()
}

/// Builds a model of `name` from sampled hyper-parameters; returns the
/// parameter map alongside. Models without tunable knobs get an empty map.
fn sample_model(
    name: &str,
    rng: &mut rand::rngs::StdRng,
) -> Option<(Box<dyn Regressor>, BTreeMap<String, f64>)> {
    let mut p = BTreeMap::new();
    let model: Box<dyn Regressor> = match name {
        "ridge" => {
            let alpha = log_uniform(rng, 1e-6, 1e2);
            p.insert("alpha".into(), alpha);
            Box::new(Ridge::new(alpha))
        }
        "lasso" => {
            let alpha = log_uniform(rng, 1e-4, 1e1);
            p.insert("alpha".into(), alpha);
            Box::new(Lasso::new(alpha))
        }
        "elastic-net" => {
            let alpha = log_uniform(rng, 1e-4, 1e1);
            let ratio = rng.gen_range(0.05..0.95);
            p.insert("alpha".into(), alpha);
            p.insert("l1_ratio".into(), ratio);
Box::new(ElasticNet::new(alpha, ratio))
        }
        "kernel-ridge" => {
            let alpha = log_uniform(rng, 1e-4, 1e1);
            let gamma = log_uniform(rng, 1e-3, 1e1);
            p.insert("alpha".into(), alpha);
            p.insert("gamma".into(), gamma);
Box::new(KernelRidge::new(alpha, Some(gamma)))
        }
        "svr" => {
            let c = log_uniform(rng, 1e-1, 1e3);
            let eps = log_uniform(rng, 1e-3, 1e-1);
            p.insert("c".into(), c);
            p.insert("epsilon".into(), eps);
Box::new(Svr::new(c, eps))
        }
        "decision-tree" => {
            let depth = rng.gen_range(2..14) as f64;
            p.insert("max_depth".into(), depth);
Box::new(DecisionTree::with_depth(depth as usize))
        }
        "random-forest" => {
            let trees = rng.gen_range(10..60) as f64;
            let depth = rng.gen_range(3..12) as f64;
            p.insert("n_trees".into(), trees);
            p.insert("max_depth".into(), depth);
Box::new(RandomForest::new(trees as usize, depth as usize))
        }
        "mlp" => {
            let hidden = rng.gen_range(8..48) as f64;
            let lr = log_uniform(rng, 1e-3, 5e-2);
            p.insert("hidden".into(), hidden);
            p.insert("lr".into(), lr);
Box::new(Mlp::new(hidden as usize, lr))
        }
        other => crate::search::create_model(other)?,
    };
    Some((model, p))
}

impl Tuner {
    /// Tunes `model_name` on `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] for unknown models or when every trial fails
    /// to train.
    pub fn tune(&self, model_name: &str, x: &Matrix, y: &[f64]) -> Result<TuneOutcome, TrainError> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let (train, test) = train_test_split(x.rows(), self.test_fraction, self.seed);
        let (xtr, ytr) = take_rows(x, y, &train);
        let (xte, yte) = take_rows(x, y, &test);
        let mut trials: Vec<Trial> = Vec::new();
        let mut best: Option<(Trial, BTreeMap<String, f64>)> = None;
        for _ in 0..self.n_trials {
            let Some((mut model, params)) = sample_model(model_name, &mut rng) else {
                return Err(TrainError::new(format!("unknown model `{model_name}`")));
            };
            if model.fit(&xtr, &ytr).is_err() {
                continue;
            }
            let pred = model.predict(&xte);
            if pred.iter().any(|v| !v.is_finite()) {
                continue;
            }
            let acc = 1.0 - metrics::mape(&yte, &pred);
            let trial = Trial {
                params: params.clone(),
                accuracy: acc,
            };
            trials.push(trial.clone());
            if best
                .as_ref()
                .map(|(t, _)| acc > t.accuracy)
                .unwrap_or(true)
            {
                best = Some((trial, params));
            }
        }
        let Some((best_trial, best_params)) = best else {
            return Err(TrainError::new("every tuning trial failed"));
        };
        // Rebuild the winner deterministically from its parameters and
        // refit on everything.
        let mut model = rebuild(model_name, &best_params)
            .ok_or_else(|| TrainError::new(format!("unknown model `{model_name}`")))?;
        model.fit(x, y)?;
        trials.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).unwrap());
        Ok(TuneOutcome {
            best: best_trial,
            model,
            trials,
        })
    }
}

fn rebuild(name: &str, p: &BTreeMap<String, f64>) -> Option<Box<dyn Regressor>> {
    let g = |k: &str, d: f64| p.get(k).copied().unwrap_or(d);
    Some(match name {
        "ridge" => Box::new(Ridge::new(g("alpha", 1.0))),
        "lasso" => Box::new(Lasso::new(g("alpha", 0.1))),
        "elastic-net" => Box::new(ElasticNet::new(g("alpha", 0.1), g("l1_ratio", 0.5))),
        "kernel-ridge" => Box::new(KernelRidge::new(g("alpha", 0.1), p.get("gamma").copied())),
        "svr" => Box::new(Svr::new(g("c", 10.0), g("epsilon", 0.02))),
        "decision-tree" => Box::new(DecisionTree::with_depth(g("max_depth", 8.0) as usize)),
        "random-forest" => Box::new(RandomForest::new(g("n_trees", 30.0) as usize, g("max_depth", 8.0) as usize)),
        "mlp" => Box::new(Mlp::new(g("hidden", 24.0) as usize, g("lr", 0.01))),
        other => crate::search::create_model(other)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::synthetic;

    #[test]
    fn tuner_improves_over_bad_default() {
        let (x, y) = synthetic(120, 0.05, 17);
        // A badly over-regularized default…
        let mut bad = Ridge::new(1e4);
        bad.fit(&x, &y).unwrap();
        let bad_acc = 1.0 - metrics::mape(&y, &bad.predict(&x));
        // …versus 20 random trials.
        let out = Tuner::default().tune("ridge", &x, &y).unwrap();
        assert!(out.best.accuracy > bad_acc);
        assert!(out.best.params.contains_key("alpha"));
        assert!(!out.trials.is_empty());
    }

    #[test]
    fn tuner_is_deterministic() {
        let (x, y) = synthetic(80, 0.1, 18);
        let a = Tuner::default().tune("decision-tree", &x, &y).unwrap();
        let b = Tuner::default().tune("decision-tree", &x, &y).unwrap();
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn unknown_model_is_an_error() {
        let (x, y) = synthetic(40, 0.1, 19);
        assert!(Tuner::default().tune("alexnet", &x, &y).is_err());
    }

    #[test]
    fn untunable_models_fall_back_to_defaults() {
        let (x, y) = synthetic(60, 0.1, 20);
        let out = Tuner {
            n_trials: 3,
            ..Tuner::default()
        }
        .tune("linear", &x, &y)
        .unwrap();
        assert!(out.best.params.is_empty());
        assert!(out.best.accuracy > 0.9);
    }
}
