//! Fault-injection integration tests: the supervision layer must keep the
//! pipeline correct, deterministic and fully reporting while phases panic,
//! the verifier rejects modules, the interpreter starves and workers die.
//!
//! The fault seed can be varied from outside (CI runs a small seed matrix)
//! via `MLCOMP_FAULT_SEED`; with the variable unset a fixed seed is used,
//! so a plain `cargo test` is reproducible.

use mlcomp::core::{DataExtraction, ExtractionError};
use mlcomp::faults::{quiet_injected_panics, FaultPlan};
use mlcomp::passes::{registry, PassManager};
use mlcomp::platform::X86Platform;
use mlcomp::suites::BenchProgram;
use proptest::prelude::*;

/// The plan under test: `MLCOMP_FAULT_SEED` if set (the CI seed matrix),
/// otherwise a fixed chaos plan (~10% phase panics, 5% verifier
/// corruption, 5% fuel starvation, 10% transient worker deaths).
fn fault_plan() -> FaultPlan {
    FaultPlan::from_env().unwrap_or_else(|| FaultPlan::chaos(20210))
}

fn sample_programs() -> Vec<BenchProgram> {
    let names = ["blackscholes", "dedup", "crc32", "qsort"];
    mlcomp::suites::parsec_suite()
        .into_iter()
        .chain(mlcomp::suites::beebs_suite())
        .filter(|p| names.contains(&p.name))
        .collect()
}

fn small_suite() -> Vec<BenchProgram> {
    mlcomp::suites::parsec_suite()
        .into_iter()
        .filter(|p| ["dedup", "vips", "blackscholes"].contains(&p.name))
        .collect()
}

#[test]
fn zero_rate_plan_is_bit_identical_to_no_plan() {
    // The injection hook must be free when disabled: an all-zero plan
    // takes the exact same path as no plan at all.
    let platform = X86Platform::new();
    let apps = small_suite();
    let without = DataExtraction::quick().run(&platform, &apps).unwrap();
    let with = DataExtraction {
        fault_plan: Some(FaultPlan::from_seed(99)),
        ..DataExtraction::quick()
    }
    .run(&platform, &apps)
    .unwrap();
    assert_eq!(
        serde_json::to_string(&without).unwrap(),
        serde_json::to_string(&with).unwrap()
    );
    assert!(without.failures.is_empty());
}

#[test]
fn chaos_run_completes_and_accounts_for_every_datapoint() {
    let platform = X86Platform::new();
    let apps = small_suite();
    let ds = DataExtraction {
        fault_plan: Some(fault_plan()),
        min_success_fraction: 0.0,
        ..DataExtraction::quick()
    }
    .run(&platform, &apps)
    .unwrap();
    // Every (app, variant) item is either a sample or a reported failure.
    let total = apps.len() * 8;
    assert_eq!(ds.len() + ds.failures.failed.len(), total);
    for q in &ds.failures.quarantined {
        assert!(registry::is_registered(&q.phase), "unknown phase {:?}", q);
        assert!(!q.reason.is_empty());
    }
    for f in &ds.failures.failed {
        assert!(f.attempts >= 1, "attempts recorded: {f:?}");
        assert!(!f.reason.is_empty());
    }
}

#[test]
fn faulty_extraction_is_bit_identical_across_thread_counts() {
    // Fault decisions are pure functions of (plan seed, site key), so the
    // chaos dataset — samples, quarantines and failures — must not depend
    // on worker scheduling.
    let platform = X86Platform::new();
    let apps = small_suite();
    let plan = fault_plan();
    let config = |threads: usize| DataExtraction {
        num_threads: threads,
        fault_plan: Some(plan),
        min_success_fraction: 0.0,
        ..DataExtraction::quick()
    };
    let reference = config(1).run(&platform, &apps).unwrap();
    let reference_json = serde_json::to_string(&reference).unwrap();
    assert!(
        !reference.failures.is_empty(),
        "the chaos plan should injure something in 24 datapoints"
    );
    for threads in [4usize, 8] {
        let ds = config(threads).run(&platform, &apps).unwrap();
        assert_eq!(
            reference_json,
            serde_json::to_string(&ds).unwrap(),
            "chaos dataset must be byte-identical at num_threads={threads}"
        );
    }
}

#[test]
fn killed_faulty_run_resumes_identically() {
    let platform = X86Platform::new();
    let apps = small_suite();
    let plan = fault_plan();
    let config = DataExtraction {
        fault_plan: Some(plan),
        min_success_fraction: 0.0,
        checkpoint_every: 4,
        ..DataExtraction::quick()
    };
    let full = config.run(&platform, &apps).unwrap();

    let path = std::env::temp_dir().join(format!("mlcomp_fault_ckpt_{}.json", plan.seed));
    let _ = std::fs::remove_file(&path);
    let partial = DataExtraction {
        max_items_per_run: 7,
        ..config.clone()
    }
    .run_with_checkpoint(&platform, &apps, Some(&path));
    assert!(
        matches!(partial, Err(ExtractionError::Interrupted { .. })),
        "{partial:?}"
    );
    assert!(path.exists(), "checkpoint persisted at the kill point");

    let resumed = config
        .run_with_checkpoint(&platform, &apps, Some(&path))
        .unwrap();
    assert_eq!(
        serde_json::to_string(&full).unwrap(),
        serde_json::to_string(&resumed).unwrap(),
        "resumed run must equal the uninterrupted one byte for byte"
    );
    assert!(!path.exists(), "checkpoint removed after success");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Random long phase sequences under injected faults: whatever panics
    /// or corrupts, the surviving module must behave exactly like the
    /// unoptimized (-O0) program, every skipped phase must sit in the
    /// quarantine report, and replaying the same plan must be
    /// bit-identical.
    #[test]
    fn faulty_sequences_preserve_behaviour(
        program_idx in 0usize..4,
        phase_indices in prop::collection::vec(0usize..registry::PHASE_COUNT, 1..48),
    ) {
        quiet_injected_panics();
        let programs = sample_programs();
        let program = &programs[program_idx];
        let reference = program.run_default().expect("baseline executes");
        let plan = fault_plan();
        let pm = PassManager::new();
        let names: Vec<&str> = phase_indices
            .iter()
            .map(|&i| registry::PHASE_NAMES[i])
            .collect();

        let mut variant = program.clone();
        let report = pm
            .run_sequence_sandboxed(
                &mut variant.module,
                names.iter().copied(),
                Some(&plan),
                program.name,
            )
            .expect("all names are registered");
        // Every quarantine entry points at the phase occurrence it pulled.
        for entry in &report.quarantine.entries {
            prop_assert_eq!(entry.phase.as_str(), names[entry.index]);
        }
        mlcomp::ir::verify(&variant.module).expect("sandboxed module stays verifier-clean");
        let got = variant
            .run_default()
            .unwrap_or_else(|e| panic!("{} under {names:?} trapped: {e}", program.name));
        prop_assert_eq!(got, reference, "{} miscompiled under faults", program.name);

        // Same plan, same sites → bit-identical module and report.
        let mut replay = program.clone();
        let replay_report = pm
            .run_sequence_sandboxed(
                &mut replay.module,
                names.iter().copied(),
                Some(&plan),
                program.name,
            )
            .expect("all names are registered");
        prop_assert_eq!(&variant.module, &replay.module);
        prop_assert_eq!(&report.quarantine, &replay_report.quarantine);
    }
}
