//! Cross-crate integration: the full MLComp methodology on both target
//! platforms, serialization round-trips, and determinism.

use mlcomp::core::{Mlcomp, MlcompConfig, PhaseSequenceSelector};
use mlcomp::platform::{Profiler, RiscVPlatform, TargetPlatform, Workload, X86Platform};
use mlcomp::suites::BenchProgram;

fn quick_config() -> MlcompConfig {
    let mut c = MlcompConfig::quick();
    c.pss.episodes = 32;
    c
}

fn apps(names: &[&str]) -> Vec<BenchProgram> {
    mlcomp::suites::parsec_suite()
        .into_iter()
        .chain(mlcomp::suites::beebs_suite())
        .filter(|p| names.contains(&p.name))
        .collect()
}

fn assert_pipeline_works<P: TargetPlatform + Sync>(platform: &P, names: &[&str]) {
    let apps = apps(names);
    let artifacts = Mlcomp::new(quick_config())
        .run(platform, &apps)
        .expect("pipeline runs");
    // Dataset sane.
    assert!(artifacts.dataset.len() >= names.len() * 5);
    assert_eq!(artifacts.dataset.platform, platform.name());
    // PE trained for all four metrics with positive accuracy.
    assert_eq!(artifacts.estimator.report().rows.len(), 4);
    for (metric, _, _, acc, _) in &artifacts.estimator.report().rows {
        assert!(*acc > 0.0, "{metric} accuracy {acc}");
    }
    // Selector optimizes without breaking programs.
    let profiler = Profiler::new(platform);
    let mut base_total = 0.0;
    let mut tuned_total = 0.0;
    for app in &apps {
        let (opt, phases) = artifacts.selector.optimize(&app.module);
        assert!(phases.len() <= artifacts.selector.config.max_seq_len);
        mlcomp::ir::verify(&opt).expect("optimized module is valid IR");
        let w = Workload::new(app.entry, app.default_args());
        let base = profiler.profile(&app.module, &w).expect("base profile");
        let tuned = profiler.profile(&opt, &w).expect("tuned profile");
        base_total += base.exec_time_s;
        tuned_total += tuned.exec_time_s;
    }
    assert!(
        tuned_total < base_total,
        "{}: selector should improve total time ({tuned_total} vs {base_total})",
        platform.name()
    );
}

#[test]
fn full_pipeline_x86_parsec() {
    assert_pipeline_works(&X86Platform::new(), &["dedup", "vips"]);
}

#[test]
fn full_pipeline_riscv_beebs() {
    assert_pipeline_works(&RiscVPlatform::new(), &["crc32", "fir"]);
}

#[test]
fn selector_roundtrips_through_json() {
    let platform = X86Platform::new();
    let apps = apps(&["x264"]);
    let artifacts = Mlcomp::new(quick_config())
        .run(&platform, &apps)
        .expect("pipeline runs");
    let json = artifacts.selector.to_json().expect("serializes");
    let reloaded = PhaseSequenceSelector::from_json(&json).expect("deserializes");
    let (m1, p1) = artifacts.selector.optimize(&apps[0].module);
    let (m2, p2) = reloaded.optimize(&apps[0].module);
    assert_eq!(p1, p2, "identical phase decisions after reload");
    assert_eq!(m1, m2, "identical optimized modules after reload");
}

#[test]
fn pipeline_is_deterministic() {
    let platform = RiscVPlatform::new();
    let a1 = Mlcomp::new(quick_config())
        .run(&platform, &apps(&["prime"]))
        .expect("run 1");
    let a2 = Mlcomp::new(quick_config())
        .run(&platform, &apps(&["prime"]))
        .expect("run 2");
    assert_eq!(a1.dataset, a2.dataset, "extraction is seeded");
    let (_, p1) = a1.selector.optimize(&apps(&["prime"])[0].module);
    let (_, p2) = a2.selector.optimize(&apps(&["prime"])[0].module);
    assert_eq!(p1, p2, "training is seeded");
}

#[test]
fn dataset_serializes() {
    let platform = X86Platform::new();
    let apps = apps(&["dedup"]);
    let ds = mlcomp::core::DataExtraction::quick()
        .run(&platform, &apps)
        .expect("extraction runs");
    let json = serde_json::to_string(&ds).expect("dataset serializes");
    let back: mlcomp::core::Dataset = serde_json::from_str(&json).expect("deserializes");
    // Structure and exact fields round-trip; metric floats survive to
    // within JSON printing precision.
    assert_eq!(ds.platform, back.platform);
    assert_eq!(ds.len(), back.len());
    for (a, b) in ds.samples.iter().zip(&back.samples) {
        assert_eq!(a.app, b.app);
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.features, b.features);
        for (x, y) in a.metrics.as_array().iter().zip(b.metrics.as_array()) {
            assert!((x - y).abs() <= x.abs() * 1e-12);
        }
    }
}
