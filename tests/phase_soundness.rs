//! The compiler-correctness backbone: every Table VI phase — alone, in
//! random sequences, and in the standard pipelines — must preserve the
//! observable behaviour (checksum) of every benchmark program and keep the
//! IR verifier-clean.

use mlcomp::passes::{registry, PassManager, PipelineLevel};
use mlcomp::suites::BenchProgram;
use proptest::prelude::*;

fn sample_programs() -> Vec<BenchProgram> {
    // A structurally diverse subset (loops, recursion, floats, switches,
    // globals) keeps the test fast while covering the IR surface.
    let names = [
        "blackscholes",
        "fluidanimate",
        "dedup",
        "crc32",
        "fibcall",
        "qsort",
        "nsichneu",
        "minver",
    ];
    mlcomp::suites::parsec_suite()
        .into_iter()
        .chain(mlcomp::suites::beebs_suite())
        .filter(|p| names.contains(&p.name))
        .collect()
}

#[test]
fn every_single_phase_preserves_behaviour() {
    let pm = PassManager::verifying();
    for program in sample_programs() {
        let reference = program.run_default().expect("baseline executes");
        for phase in registry::all_phase_names() {
            let mut variant = program.clone();
            pm.run_phase(&mut variant.module, phase)
                .expect("phase exists");
            let got = variant
                .run_default()
                .unwrap_or_else(|e| panic!("{}/{phase} trapped: {e}", program.name));
            assert_eq!(
                got, reference,
                "{}: phase `{phase}` changed the checksum",
                program.name
            );
        }
    }
}

#[test]
fn every_phase_is_deterministic() {
    // Hash-map iteration order must never leak into the produced IR:
    // applying the same phase to the same module twice (fresh container
    // states each time) must yield *identical* modules, arena order
    // included — the property that makes trained-selector reloads and
    // dataset extraction bit-reproducible.
    let pm = PassManager::new();
    for program in sample_programs() {
        for phase in registry::all_phase_names() {
            let mut a = program.module.clone();
            let mut b = program.module.clone();
            pm.run_phase(&mut a, phase).expect("phase exists");
            pm.run_phase(&mut b, phase).expect("phase exists");
            assert_eq!(
                a, b,
                "{}: phase `{phase}` is nondeterministic",
                program.name
            );
        }
        // And the composed -O3 pipeline.
        let mut a = program.module.clone();
        let mut b = program.module.clone();
        pm.run_level(&mut a, PipelineLevel::O3);
        pm.run_level(&mut b, PipelineLevel::O3);
        assert_eq!(a, b, "{}: -O3 is nondeterministic", program.name);
    }
}

#[test]
fn standard_pipelines_preserve_behaviour_everywhere() {
    let pm = PassManager::verifying();
    for program in mlcomp::suites::parsec_suite()
        .into_iter()
        .chain(mlcomp::suites::beebs_suite())
    {
        let reference = program.run_default().expect("baseline executes");
        for level in PipelineLevel::ALL {
            let mut variant = program.clone();
            pm.run_level(&mut variant.module, level);
            let got = variant
                .run_default()
                .unwrap_or_else(|e| panic!("{}/{level} trapped: {e}", program.name));
            assert_eq!(
                got, reference,
                "{}: {level} changed the checksum",
                program.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Random phase sequences over random programs: the MLComp search
    /// space itself. Any checksum change or verifier failure here is a
    /// miscompile the RL policy could stumble into.
    #[test]
    fn random_phase_sequences_are_sound(
        program_idx in 0usize..8,
        phase_indices in prop::collection::vec(0usize..registry::PHASE_COUNT, 1..14),
    ) {
        let programs = sample_programs();
        let program = &programs[program_idx];
        let reference = program.run_default().expect("baseline executes");
        let pm = PassManager::verifying();
        let mut variant = program.clone();
        let names: Vec<&str> = phase_indices
            .iter()
            .map(|&i| registry::PHASE_NAMES[i])
            .collect();
        for phase in &names {
            pm.run_phase(&mut variant.module, phase).expect("phase exists");
        }
        let got = variant
            .run_default()
            .unwrap_or_else(|e| panic!("{} under {names:?} trapped: {e}", program.name));
        prop_assert_eq!(
            got,
            reference,
            "{} miscompiled by {:?}",
            program.name,
            names
        );
    }
}
