//! Determinism regression tests for the parallel hot paths: the same seed
//! must produce byte-identical artifacts at every worker-thread count.
//!
//! This is the contract that makes `num_threads` a pure performance knob —
//! datasets extracted on a laptop and a 64-core server are interchangeable,
//! and every experiment in the paper reproduction is exactly repeatable.

use mlcomp::core::DataExtraction;
use mlcomp::ml::search::ModelSearch;
use mlcomp::platform::X86Platform;

fn small_suite() -> Vec<mlcomp::suites::BenchProgram> {
    mlcomp::suites::parsec_suite()
        .into_iter()
        .filter(|p| ["dedup", "vips", "blackscholes"].contains(&p.name))
        .collect()
}

#[test]
fn dataset_serialization_is_identical_across_thread_counts() {
    let platform = X86Platform::new();
    let apps = small_suite();
    let reference = DataExtraction {
        num_threads: 1,
        noise: 0.005,
        ..DataExtraction::quick()
    }
    .run(&platform, &apps)
    .unwrap();
    let reference_json = serde_json::to_string(&reference).unwrap();
    for threads in [4usize, 8] {
        let ds = DataExtraction {
            num_threads: threads,
            noise: 0.005,
            ..DataExtraction::quick()
        }
        .run(&platform, &apps)
        .unwrap();
        assert_eq!(
            reference_json,
            serde_json::to_string(&ds).unwrap(),
            "Dataset JSON must be byte-identical at num_threads={threads}"
        );
    }
}

#[test]
fn model_search_winner_is_identical_across_thread_counts() {
    let platform = X86Platform::new();
    let apps = small_suite();
    let dataset = DataExtraction::quick().run(&platform, &apps).unwrap();
    let x = dataset.features();
    let y = dataset.targets("exec_time_s");

    let reference = ModelSearch {
        num_threads: 1,
        ..ModelSearch::quick()
    }
    .run(&x, &y)
    .unwrap();
    for threads in [4usize, 8] {
        let out = ModelSearch {
            num_threads: threads,
            ..ModelSearch::quick()
        }
        .run(&x, &y)
        .unwrap();
        assert_eq!(
            (
                reference.best.model_name.as_str(),
                reference.best.preprocessor_name.as_str(),
                reference.early_stopped,
            ),
            (
                out.best.model_name.as_str(),
                out.best.preprocessor_name.as_str(),
                out.early_stopped,
            ),
            "winning pipeline must not depend on num_threads={threads}"
        );
        assert_eq!(reference.leaderboard, out.leaderboard);
    }
}

#[test]
fn extraction_is_repeatable_within_one_thread_count() {
    let platform = X86Platform::new();
    let apps = small_suite();
    let config = DataExtraction {
        num_threads: 8,
        ..DataExtraction::quick()
    };
    let a = config.run(&platform, &apps).unwrap();
    let b = config.run(&platform, &apps).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}
