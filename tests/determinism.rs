//! Determinism regression tests for the parallel hot paths: the same seed
//! must produce byte-identical artifacts at every worker-thread count.
//!
//! This is the contract that makes `num_threads` a pure performance knob —
//! datasets extracted on a laptop and a 64-core server are interchangeable,
//! and every experiment in the paper reproduction is exactly repeatable.

use mlcomp::core::DataExtraction;
use mlcomp::ml::search::ModelSearch;
use mlcomp::platform::X86Platform;

fn small_suite() -> Vec<mlcomp::suites::BenchProgram> {
    mlcomp::suites::parsec_suite()
        .into_iter()
        .filter(|p| ["dedup", "vips", "blackscholes"].contains(&p.name))
        .collect()
}

#[test]
fn dataset_serialization_is_identical_across_thread_counts() {
    let platform = X86Platform::new();
    let apps = small_suite();
    let reference = DataExtraction {
        num_threads: 1,
        noise: 0.005,
        ..DataExtraction::quick()
    }
    .run(&platform, &apps)
    .unwrap();
    let reference_json = serde_json::to_string(&reference).unwrap();
    for threads in [4usize, 8] {
        let ds = DataExtraction {
            num_threads: threads,
            noise: 0.005,
            ..DataExtraction::quick()
        }
        .run(&platform, &apps)
        .unwrap();
        assert_eq!(
            reference_json,
            serde_json::to_string(&ds).unwrap(),
            "Dataset JSON must be byte-identical at num_threads={threads}"
        );
    }
}

#[test]
fn model_search_winner_is_identical_across_thread_counts() {
    let platform = X86Platform::new();
    let apps = small_suite();
    let dataset = DataExtraction::quick().run(&platform, &apps).unwrap();
    let x = dataset.features();
    let y = dataset.targets("exec_time_s");

    let reference = ModelSearch {
        num_threads: 1,
        ..ModelSearch::quick()
    }
    .run(&x, &y)
    .unwrap();
    for threads in [4usize, 8] {
        let out = ModelSearch {
            num_threads: threads,
            ..ModelSearch::quick()
        }
        .run(&x, &y)
        .unwrap();
        assert_eq!(
            (
                reference.best.model_name.as_str(),
                reference.best.preprocessor_name.as_str(),
                reference.early_stopped,
            ),
            (
                out.best.model_name.as_str(),
                out.best.preprocessor_name.as_str(),
                out.early_stopped,
            ),
            "winning pipeline must not depend on num_threads={threads}"
        );
        assert_eq!(reference.leaderboard, out.leaderboard);
    }
}

/// The observability contract (DESIGN.md §11): attaching a trace sink
/// must not change a single byte of any artifact. Timing is read only for
/// events, never fed back into seeds, ordering, or results.
#[test]
fn tracing_does_not_perturb_extraction_fingerprints() {
    use std::sync::Arc;

    let platform = X86Platform::new();
    let apps = small_suite();
    let config = DataExtraction {
        num_threads: 4,
        ..DataExtraction::quick()
    };

    // Reference: tracing never installed (the shipping default).
    let untraced = serde_json::to_string(&config.run(&platform, &apps).unwrap()).unwrap();

    // NullSink: instrumentation stays disabled.
    let null_traced = mlcomp::trace::with_sink(Arc::new(mlcomp::trace::NullSink), || {
        serde_json::to_string(&config.run(&platform, &apps).unwrap()).unwrap()
    });
    assert_eq!(untraced, null_traced, "NullSink must be a no-op");

    // RingSink: full instrumentation enabled, events buffered in memory.
    let ring = Arc::new(mlcomp::trace::RingSink::new(1 << 16));
    let ring_traced = mlcomp::trace::with_sink(ring.clone(), || {
        serde_json::to_string(&config.run(&platform, &apps).unwrap()).unwrap()
    });
    assert_eq!(
        untraced, ring_traced,
        "an in-memory sink must not perturb the Dataset"
    );
    assert!(
        !ring.is_empty(),
        "an enabled sink must actually observe events"
    );

    // JsonlSink: full instrumentation writing to a real file.
    let path = std::env::temp_dir().join("mlcomp_determinism_trace.jsonl");
    let sink = mlcomp::trace::JsonlSink::create(&path).expect("temp trace file");
    let jsonl_traced = mlcomp::trace::with_sink(Arc::new(sink), || {
        serde_json::to_string(&config.run(&platform, &apps).unwrap()).unwrap()
    });
    assert_eq!(
        untraced, jsonl_traced,
        "a JSONL sink must not perturb the Dataset"
    );
    let trace = std::fs::read_to_string(&path).expect("trace file exists");
    std::fs::remove_file(&path).ok();
    assert!(
        trace.lines().any(|l| l.contains("\"t\":\"span\"")),
        "the trace file must contain span events"
    );
}

#[test]
fn extraction_is_repeatable_within_one_thread_count() {
    let platform = X86Platform::new();
    let apps = small_suite();
    let config = DataExtraction {
        num_threads: 8,
        ..DataExtraction::quick()
    };
    let a = config.run(&platform, &apps).unwrap();
    let b = config.run(&platform, &apps).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}
