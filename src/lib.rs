//! MLComp — reproduction of "MLComp: A Methodology for Machine
//! Learning-based Performance Estimation and Adaptive Selection of
//! Pareto-Optimal Compiler Optimization Sequences" (DATE 2021).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ir`] — the SSA compiler IR and profiling interpreter;
//! * [`faults`] — deterministic fault injection for robustness testing;
//! * [`passes`] — the 48 Table-VI optimization phases and pass manager;
//! * [`features`] — 63 Milepost-style static code features;
//! * [`platform`] — x86 and RISC-V cost models and the profiler;
//! * [`suites`] — PARSEC-like and BEEBS-like benchmark programs;
//! * [`linalg`] — dense linear algebra for the ML stack;
//! * [`ml`] — preprocessing, the regression model zoo and model search;
//! * [`rl`] — REINFORCE policy-gradient learning;
//! * [`core`] — the MLComp methodology itself (data extraction,
//!   Performance Estimator, Phase Selection Policy, deployment);
//! * [`serve`] — deployable artifact bundles and the batched, cached
//!   phase-selection serving layer (see DESIGN.md §12);
//! * [`trace`] — structured tracing, metrics and phase-level profiling
//!   (out-of-band: never perturbs results; see DESIGN.md §11).
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory.

pub use mlcomp_core as core;
pub use mlcomp_faults as faults;
pub use mlcomp_features as features;
pub use mlcomp_ir as ir;
pub use mlcomp_linalg as linalg;
pub use mlcomp_ml as ml;
pub use mlcomp_passes as passes;
pub use mlcomp_platform as platform;
pub use mlcomp_rl as rl;
pub use mlcomp_serve as serve;
pub use mlcomp_suites as suites;
pub use mlcomp_trace as trace;
