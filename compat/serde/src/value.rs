//! The in-memory JSON data model shared by `serde` and `serde_json`.

use crate::Error;

/// A JSON value with exact integers and insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also the encoding of `None` and non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer representable as `i64` (the common case).
    Int(i64),
    /// An integer above `i64::MAX` — e.g. `f64` bit patterns stored by
    /// `mlcomp_linalg::serde_bits`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys keep insertion order so output is byte-stable.
    Object(Object),
}

impl Value {
    /// A short name of the value's JSON kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object payload, when this is an object.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array payload, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Builds the externally-tagged enum encoding `{"tag": inner}`.
    pub fn tagged(tag: &str, inner: Value) -> Value {
        let mut obj = Object::with_capacity(1);
        obj.insert(tag, inner);
        Value::Object(obj)
    }

    /// Destructures the externally-tagged enum encoding: an object with
    /// exactly one key.
    pub fn as_tagged(&self) -> Option<(&str, &Value)> {
        let obj = self.as_object()?;
        if obj.len() == 1 {
            let (k, v) = &obj.entries[0];
            Some((k, v))
        } else {
            None
        }
    }
}

impl crate::Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object {
    pub(crate) entries: Vec<(String, Value)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// An empty object with reserved capacity.
    pub fn with_capacity(n: usize) -> Object {
        Object {
            entries: Vec::with_capacity(n),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry (no duplicate check; derive output never
    /// duplicates keys).
    pub fn insert(&mut self, key: &str, value: Value) {
        self.entries.push((key.to_string(), value));
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Looks up a mandatory struct field.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the field is absent.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}
