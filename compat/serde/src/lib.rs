//! Workspace-local stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment cannot reach crates.io, so the real `serde` (and
//! its `syn`/`quote`-based derive) is unavailable. This crate provides the
//! subset the workspace relies on with a deliberately simpler data model:
//! values serialize into an in-memory JSON [`Value`] tree and deserialize
//! back out of one. The companion [`serde_json`] crate handles the
//! text ⇄ [`Value`] conversion, and the [`serde_derive`] proc-macro crate
//! generates [`Serialize`]/[`Deserialize`] impls for structs and enums,
//! including `#[serde(with = "path")]` field overrides.
//!
//! Design notes:
//!
//! * Objects preserve insertion order, so serialization is byte-stable —
//!   a property the parallel-extraction determinism tests depend on.
//! * Integers are kept exact ([`Value::Int`]/[`Value::UInt`]); `f64` bit
//!   patterns round-trip losslessly through
//!   `mlcomp_linalg::serde_bits`-style `u64` encoding.
//! * Enum encoding matches upstream serde's externally-tagged JSON layout
//!   (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}` or
//!   `{"Variant": {..}}`), so artifacts stay readable.
//!
//! [`serde_json`]: ../serde_json/index.html
//! [`serde_derive`]: ../serde_derive/index.html

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Object, Value};

use std::fmt;

/// A (de)serialization error: a plain message, matching the only way the
/// workspace consumes errors (formatting them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error { msg: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the JSON [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from the JSON [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self;
                if (v as i128) >= 0 && (v as i128) > i64::MAX as i128 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match *v {
                    Value::Int(i) => i as i128,
                    Value::UInt(u) => u as i128,
                    _ => return Err(Error::msg(format!(
                        "expected integer, found {}", v.kind()
                    ))),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    // serde_json emits `null` for non-finite floats.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::msg(format!(
                        "expected number, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::msg(format!("expected bool, found {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::msg(format!("expected string, found {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::msg(format!("expected array, found {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let Value::Array(items) = v else {
            return Err(Error::msg(format!("expected array, found {}", v.kind())));
        };
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::deserialize(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::msg(format!("expected array, found {}", v.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($len:literal, $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let Value::Array(items) = v else {
                    return Err(Error::msg(format!(
                        "expected array, found {}", v.kind()
                    )));
                };
                if items.len() != $len {
                    return Err(Error::msg(format!(
                        "expected tuple of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1, A.0);
impl_tuple!(2, A.0, B.1);
impl_tuple!(3, A.0, B.1, C.2);
impl_tuple!(4, A.0, B.1, C.2, D.3);
impl_tuple!(5, A.0, B.1, C.2, D.3, E.4);
