//! Workspace-local stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the `mlcomp-bench` benches use — `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::iter`, [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple adaptive wall-clock timer instead of criterion's statistical
//! machinery: each benchmark warms up briefly, then scales its iteration
//! count to a target measurement window and reports mean time per
//! iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup { _parent: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), f);
        self
    }
}

/// A group of benchmarks sharing a heading.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations to run this round.
    iters: u64,
    /// Measured duration of the round.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    // Warm-up + calibration round.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for a ~200 ms measurement window, capped to keep suites quick.
    let target = Duration::from_millis(200);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("{id:<48} {:>14}/iter   ({} iters)", fmt_ns(mean_ns), b.iters);
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
