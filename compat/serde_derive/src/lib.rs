//! `#[derive(Serialize, Deserialize)]` for the workspace-local serde
//! stand-in.
//!
//! The offline build environment has no `syn`/`quote`, so this macro
//! parses the item declaration directly from [`proc_macro::TokenStream`]
//! token trees. It supports exactly the shapes the workspace declares:
//!
//! * structs with named fields (with optional `#[serde(with = "path")]`
//!   per-field overrides),
//! * tuple structs (newtype and multi-field),
//! * enums with unit, tuple and struct variants (externally tagged, the
//!   upstream serde default),
//!
//! and deliberately rejects generic items — none exist in this workspace,
//! and refusing loudly beats miscompiling quietly.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    /// Path from `#[serde(with = "path")]`, if present.
    with: Option<String>,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading outer attributes, returning the `with`-path if any of
/// them is `#[serde(with = "path")]`.
fn skip_attrs(it: &mut TokenIter) -> Option<String> {
    let mut with = None;
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        let Some(TokenTree::Group(g)) = it.next() else {
            panic!("expected attribute body after `#`");
        };
        if let Some(w) = parse_serde_with(g.stream()) {
            with = Some(w);
        }
    }
    with
}

/// Extracts `path` out of a `serde(with = "path")` attribute body.
fn parse_serde_with(attr: TokenStream) -> Option<String> {
    let mut it = attr.into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return None;
    };
    let mut args = args.stream().into_iter();
    match args.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "with" => {}
        other => panic!("unsupported serde attribute: {other:?} (only `with = \"path\"` is implemented)"),
    }
    match args.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
        _ => panic!("expected `=` in #[serde(with = ...)]"),
    }
    match args.next() {
        Some(TokenTree::Literal(l)) => {
            let s = l.to_string();
            Some(s.trim_matches('"').to_string())
        }
        _ => panic!("expected string literal in #[serde(with = ...)]"),
    }
}

fn skip_visibility(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut TokenIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attrs(&mut it);
    skip_visibility(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "item name");
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic items are not supported (item `{name}`)");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected token after `struct {name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    }
}

/// Parses `name: Type, ...` named fields; field types are skipped (codegen
/// relies on inference), only names and `with`-attributes are kept.
fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut it = ts.into_iter().peekable();
    let mut fields = Vec::new();
    while it.peek().is_some() {
        let with = skip_attrs(&mut it);
        skip_visibility(&mut it);
        let name = expect_ident(&mut it, "field name");
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type_until_comma(&mut it);
        fields.push(Field { name, with });
    }
    fields
}

/// Consumes a type up to (and including) the next top-level `,`, tracking
/// `<...>` nesting — group delimiters arrive pre-nested as single token
/// trees, but angle brackets are bare puncts.
fn skip_type_until_comma(it: &mut TokenIter) {
    let mut angle_depth = 0i32;
    for tok in it.by_ref() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut count = 0;
    let mut segment_nonempty = false;
    let mut angle_depth = 0i32;
    for tok in ts {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                segment_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                segment_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if segment_nonempty {
                    count += 1;
                }
                segment_nonempty = false;
            }
            _ => segment_nonempty = true,
        }
    }
    if segment_nonempty {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut it = ts.into_iter().peekable();
    let mut variants = Vec::new();
    while it.peek().is_some() {
        skip_attrs(&mut it);
        let name = expect_ident(&mut it, "variant name");
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                it.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        match it.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("expected `,` after variant `{name}`, found {other:?} (discriminants are not supported)"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn ser_field_expr(f: &Field, access: &str) -> String {
    match &f.with {
        Some(path) => format!("{path}::serialize(&{access})"),
        None => format!("::serde::Serialize::serialize(&{access})"),
    }
}

fn de_field_expr(f: &Field, value: &str) -> String {
    match &f.with {
        Some(path) => format!("{path}::deserialize({value})?"),
        None => format!("::serde::Deserialize::deserialize({value})?"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    match item {
        Item::Struct { name, fields } => {
            let expr = match fields {
                Fields::Named(fs) => {
                    let mut s = format!(
                        "let mut __obj = ::serde::value::Object::with_capacity({});\n",
                        fs.len()
                    );
                    for f in fs {
                        s.push_str(&format!(
                            "__obj.insert(\"{}\", {});\n",
                            f.name,
                            ser_field_expr(f, &format!("self.{}", f.name))
                        ));
                    }
                    s.push_str("::serde::Value::Object(__obj)");
                    s
                }
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            body.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n{expr}\n}}\n}}\n"
            ));
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::tagged(\"{vn}\", \
                         ::serde::Serialize::serialize(__f0)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::tagged(\"{vn}\", \
                             ::serde::Value::Array(vec![{}])),\n",
                            pats.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let pats: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let mut inner = format!(
                            "let mut __obj = ::serde::value::Object::with_capacity({});\n",
                            fs.len()
                        );
                        for f in fs {
                            inner.push_str(&format!(
                                "__obj.insert(\"{}\", {});\n",
                                f.name,
                                match &f.with {
                                    Some(path) => format!("{path}::serialize({})", f.name),
                                    None => format!(
                                        "::serde::Serialize::serialize({})",
                                        f.name
                                    ),
                                }
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{inner}\
                             ::serde::Value::tagged(\"{vn}\", ::serde::Value::Object(__obj))\n}}\n",
                            pats.join(", ")
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            ));
        }
    }
    body
}

fn gen_deserialize(item: &Item) -> String {
    let mut body = String::new();
    match item {
        Item::Struct { name, fields } => {
            let expr = match fields {
                Fields::Named(fs) => {
                    let mut s = format!(
                        "let __obj = __v.as_object().ok_or_else(|| \
                         ::serde::Error::msg(\"expected object for `{name}`\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n"
                    );
                    for f in fs {
                        s.push_str(&format!(
                            "{}: {},\n",
                            f.name,
                            de_field_expr(f, &format!("__obj.field(\"{}\")?", f.name))
                        ));
                    }
                    s.push_str("})");
                    s
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                        .collect();
                    format!(
                        "let __arr = __v.as_array().ok_or_else(|| \
                         ::serde::Error::msg(\"expected array for `{name}`\"))?;\n\
                         if __arr.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::msg(\
                         \"wrong tuple length for `{name}`\"));\n}}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            body.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{expr}\n}}\n}}\n"
            ));
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize(&__arr[{i}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array for variant `{vn}`\"))?;\n\
                             if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                             \"wrong arity for variant `{vn}`\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let mut inner = format!(
                            "let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::msg(\"expected object for variant `{vn}`\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fs {
                            inner.push_str(&format!(
                                "{}: {},\n",
                                f.name,
                                de_field_expr(f, &format!("__obj.field(\"{}\")?", f.name))
                            ));
                        }
                        inner.push_str("})");
                        tagged_arms.push_str(&format!("\"{vn}\" => {{\n{inner}\n}}\n"));
                    }
                }
            }
            // `__inner` must not be bound when no variant consumes it
            // (unit-only enums), or the expansion trips -D warnings.
            let tagged_section = if tagged_arms.is_empty() {
                format!(
                    "let (__tag, _) = __v.as_tagged().ok_or_else(|| \
                     ::serde::Error::msg(\"expected externally-tagged variant for `{name}`\"))?;\n\
                     ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                     \"unknown variant `{{__tag}}` of `{name}`\")))"
                )
            } else {
                format!(
                    "let (__tag, __inner) = __v.as_tagged().ok_or_else(|| \
                     ::serde::Error::msg(\"expected externally-tagged variant for `{name}`\"))?;\n\
                     match __tag {{\n{tagged_arms}\
                     _ => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                     \"unknown variant `{{__tag}}` of `{name}`\"))),\n}}"
                )
            };
            body.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"unknown variant `{{__s}}` of `{name}`\"))),\n}};\n}}\n\
                 {tagged_section}\n}}\n}}\n"
            ));
        }
    }
    body
}
