//! Numeric strategies (`prop::num::f64::NORMAL`).

/// `f64`-specific strategies.
///
/// Inside this module the name `f64` resolves to the module itself, so the
/// primitive is spelled via `core::primitive`.
pub mod f64 {
    use crate::strategy::Strategy;
    use core::primitive::f64 as F64;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for *normal* floats: finite, non-NaN, non-subnormal.
    /// Spans the full normal exponent range, both signs.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// The canonical instance, mirroring `proptest::num::f64::NORMAL`.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = F64;

        fn sample(&self, rng: &mut StdRng) -> F64 {
            sample_normal(rng)
        }
    }

    /// Draws one normal double by direct bit construction: a random sign
    /// and mantissa with a biased exponent in `1..=2046` (never 0 =
    /// zero/subnormal, never 2047 = inf/NaN).
    pub fn sample_normal(rng: &mut StdRng) -> F64 {
        let sign = rng.next_u64() & (1 << 63);
        let exponent: u64 = rng.gen_range(1u64..=2046);
        let mantissa = rng.next_u64() & ((1 << 52) - 1);
        F64::from_bits(sign | (exponent << 52) | mantissa)
    }
}
