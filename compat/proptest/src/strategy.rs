//! The [`Strategy`] trait: a deterministic value generator.

use rand::rngs::StdRng;
use rand::Rng;

/// Generates one value per test case from the case's RNG.
///
/// Unlike upstream proptest there is no lazy value tree and no shrinking —
/// a strategy is simply "how to draw a value".
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
