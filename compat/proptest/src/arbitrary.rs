//! `any::<T>()`: the default strategy of a type, with edge-case emphasis.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical [`Strategy`].
pub trait Arbitrary: Sized {
    /// Draws one value, mixing uniform samples with type-specific edge
    /// cases (zero, extremes) at roughly a 1-in-4 rate — compensating for
    /// the lack of shrinking by making boundary inputs common.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The canonical strategy for `A` (`any::<i64>()`, `any::<bool>()`, …).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn sample(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                const SPECIALS: [$t; 5] = [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX / 2];
                match rng.next_u64() % 8 {
                    0 => SPECIALS[(rng.next_u64() % SPECIALS.len() as u64) as usize],
                    // Small magnitudes hit carry/borrow boundaries often.
                    1 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        match rng.next_u64() % 8 {
            0 => *[0.0, -0.0, 1.0, -1.0, f64::MAX, f64::MIN_POSITIVE]
                .get((rng.next_u64() % 6) as usize)
                .unwrap(),
            _ => crate::num::f64::sample_normal(rng),
        }
    }
}
