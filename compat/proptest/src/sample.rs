//! Choice strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A strategy drawing uniformly from a fixed list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.options.choose(rng).expect("non-empty options").clone()
    }
}
