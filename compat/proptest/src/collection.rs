//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Anything usable as the size argument of [`vec`](fn@vec): an exact `usize` or a
/// half-open `Range<usize>`.
pub trait IntoSizeRange {
    /// Resolves to `(min, max_exclusive)`.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// A strategy producing `Vec`s of `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "empty vec size range");
    VecStrategy { element, min, max }
}

/// Strategy returned by [`vec`](fn@vec).
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..self.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
