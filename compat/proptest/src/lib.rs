//! Workspace-local stand-in for [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! The offline build environment cannot fetch the real crate, so this
//! reimplements the subset the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range and [`collection::vec`]/[`sample::select`] strategies,
//! [`arbitrary::any`], and [`num::f64::NORMAL`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assert
//!   message) and the deterministic case index instead of minimizing.
//! * **Deterministic cases.** Case `i` of test `t` is seeded from
//!   `hash(module_path::t, i)`, so failures reproduce exactly across runs
//!   and machines — there is no `PROPTEST_` environment handling.
//! * Every strategy samples eagerly; `Strategy` is just
//!   "value generator with an RNG", not a lazy value tree.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything the workspace's `use proptest::prelude::*` expects.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// The `prop::` module namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Declares property tests. Each `#[test]` inside runs
/// `ProptestConfig::cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::sample(
                            &($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("proptest case #{} of {} failed:\n{}",
                           __case, stringify!($name), __e);
                }
            }
        }
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`", __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l, __r, ::std::format!($($fmt)*)));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Upstream resamples; this stand-in counts the case as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
