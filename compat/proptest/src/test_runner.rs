//! Test-case configuration and deterministic per-case RNG seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A failed property-test case, carrying the assertion message.
pub type TestCaseError = String;

/// Run configuration; only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // Upstream defaults to 256; 64 keeps the heavier interpreter-
            // driven property tests inside the tier-1 time budget while
            // still exercising the edge-case samplers well.
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The RNG for case `case` of the named test: FNV-1a over the fully
/// qualified test name, mixed with the case index. Stable across runs,
/// machines and thread counts.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}
