//! Concrete generators; only [`StdRng`] is used by the workspace.

use crate::{Rng, SeedableRng};

/// Deterministic standard generator: xoshiro256++ with SplitMix64 seeding.
///
/// Upstream `rand` backs `StdRng` with ChaCha12; this stand-in trades the
/// cryptographic stream (not needed here) for ~20 lines of dependency-free
/// code with excellent statistical quality (passes BigCrush as published
/// by Blackman & Vigna).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors:
        // guarantees a non-zero state for every seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
