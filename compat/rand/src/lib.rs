//! Workspace-local stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, covering exactly the 0.8 API surface this repository uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be vendored. This crate re-implements the subset the
//! workspace calls — [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`seq::SliceRandom`] helpers — on top of a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! The *value stream* intentionally differs from upstream `rand` (which
//! uses ChaCha12 for `StdRng`); nothing in this repository depends on the
//! upstream stream, only on determinism for a fixed seed, which this
//! implementation guarantees on every platform.

pub mod rngs;
pub mod seq;

/// A random number generator seedable from a `u64`, mirroring
/// `rand::SeedableRng`'s `seed_from_u64` entry point (the only constructor
/// the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform and build.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface, mirroring the `rand::Rng` / `RngCore` split in
/// a single trait (the workspace never names `RngCore` directly).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`, integer or float).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → the standard [0,1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` below `bound` via Lemire-style rejection-free
    /// widening multiply (bias < 2⁻⁶⁴, irrelevant for this workload but
    /// kept unbiased-in-practice and, crucially, deterministic).
    fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range usable with [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.next_below(span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = rng.next_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..4000 {
            let f: f64 = rng.gen_range(0.0..1.0);
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen, "samples should spread across the range");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn choose_returns_none_on_empty() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [9u8];
        assert_eq!(one.choose(&mut rng), Some(&9));
    }
}
