//! Slice sampling helpers mirroring `rand::seq::SliceRandom`.

use crate::Rng;

/// Random selection and shuffling on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` when the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.next_below(self.len() as u64) as usize])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}
