//! Workspace-local stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Converts between JSON text and the [`serde`] stand-in's [`Value`]
//! model. Guarantees that matter to this workspace:
//!
//! * **Byte-stable output** — object keys keep declaration order and
//!   numbers print deterministically, so equal values always produce
//!   identical strings (the parallel-extraction determinism tests compare
//!   whole serialized `Dataset`s bytewise).
//! * **Exact integers** — `u64` round-trips losslessly, which
//!   `mlcomp_linalg::serde_bits` relies on for f64 bit patterns.
//! * **serde_json-compatible quirks** — non-finite floats serialize as
//!   `null`, and floats that happen to be integral print via Rust's
//!   shortest-roundtrip formatting.

pub use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

impl Error {
    fn at(msg: impl Into<String>, pos: usize) -> Error {
        Error {
            msg: format!("{} at byte {pos}", msg.into()),
        }
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for this implementation; the `Result` mirrors upstream's
/// signature so call sites stay source-compatible.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    Ok(T::deserialize(&v)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(obj) => {
            out.push('{');
            for (i, (k, val)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // serde_json cannot represent NaN/inf in JSON and emits null.
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // Keep the float-ness visible so `1.0` doesn't reparse as an integer;
    // upstream serde_json prints `1.0` the same way.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::at("expected `,` or `]`", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut obj = serde::value::Object::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(obj));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    obj.insert(&key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(obj));
                        }
                        _ => return Err(Error::at("expected `,` or `}`", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::at("unexpected character", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::at("truncated \\u escape", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::at("bad \\u escape", self.pos))?,
                                16,
                            )
                            .map_err(|_| Error::at("bad \\u escape", self.pos))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::at("bad \\u code point", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::at("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::at("invalid UTF-8", start))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Vec<u64> = vec![0, 1, u64::MAX, 1 << 53];
        let json = to_string(&v).unwrap();
        assert_eq!(json, format!("[0,1,{},{}]", u64::MAX, 1u64 << 53));
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(v, back);

        let s = "a \"quoted\"\nline\tend \\ done";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);

        let f: Vec<f64> = vec![1.0, -0.5, 1e-300, std::f64::consts::PI];
        let back: Vec<f64> = from_str(&to_string(&f).unwrap()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Vec<u64>>("[1, 2").unwrap_err();
        assert!(err.to_string().contains("byte"));
        assert!(from_str::<Vec<u64>>("[1] junk").is_err());
    }

    #[test]
    fn options_and_tuples() {
        let v: Vec<Option<u32>> = vec![Some(3), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[3,null]");
        let back: Vec<Option<u32>> = from_str(&json).unwrap();
        assert_eq!(v, back);

        let t: Vec<(i64, u32)> = vec![(-4, 9)];
        let back: Vec<(i64, u32)> = from_str(&to_string(&t).unwrap()).unwrap();
        assert_eq!(t, back);
    }
}
